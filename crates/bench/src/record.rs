//! The `BENCH_*.json` record format: hand-rolled serialization and a
//! minimal JSON parser (the workspace vendors no serde), shared by the
//! `kplock-bench` driver and its `--check` regression gate.
//!
//! A bench file is one JSON object:
//!
//! ```json
//! {
//!   "schema": "kplock-bench/v1",
//!   "mode": "full",
//!   "records": [ { ...one BenchRecord... }, ... ]
//! }
//! ```
//!
//! Every record carries its full configuration key (`id` is the unique
//! join key `--check` matches on) plus the measurements; see
//! [`BenchRecord`] for field semantics. Latency percentiles are
//! per-operation for the `hot_loop` suite and per-run for the `sim` and
//! `threaded` suites (whole-run wall times across repetitions).

use std::fmt::Write as _;

/// One measured configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Unique key, e.g. `hot/contended/queue/t8/s16` — what `--check`
    /// joins baseline and current runs on.
    pub id: String,
    /// Suite name: `hot_loop`, `sim`, or `threaded`.
    pub suite: String,
    /// Workload label within the suite.
    pub workload: String,
    /// Table implementation label ([`kplock_dlm::TableSpec::label`]).
    pub table: String,
    /// OS threads driving the table (1 for the sim suite).
    pub threads: u32,
    /// Lock-table shards.
    pub shards: u32,
    /// Deadlock-resolution arm (`none` for raw table suites).
    pub resolution: String,
    /// Fault plan label (`none` or `lossy`).
    pub fault_plan: String,
    /// Operations counted (suite-specific: trait calls for `hot_loop`,
    /// commits for `sim`, applied steps for `threaded`).
    pub ops: u64,
    /// Wall-clock time for the measured phase.
    pub elapsed_ms: f64,
    /// `ops / elapsed` in operations per second.
    pub throughput_ops_per_s: f64,
    /// Latency percentiles in microseconds (see module docs for the
    /// sampling unit per suite).
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile, microseconds.
    pub p999_us: f64,
    /// Aborts/restarts observed (prevention restarts, timeout aborts).
    pub restarts: u64,
    /// Chandy–Misra–Haas probe messages (sim suite under `probe`).
    pub probe_messages: u64,
}

impl BenchRecord {
    fn to_json(&self, out: &mut String, indent: &str) {
        let _ = write!(
            out,
            "{indent}{{\"id\": {id}, \"suite\": {suite}, \"workload\": {workload}, \
             \"table\": {table}, \"threads\": {threads}, \"shards\": {shards}, \
             \"resolution\": {resolution}, \"fault_plan\": {fault}, \"ops\": {ops}, \
             \"elapsed_ms\": {elapsed}, \"throughput_ops_per_s\": {thr}, \
             \"p50_us\": {p50}, \"p99_us\": {p99}, \"p999_us\": {p999}, \
             \"restarts\": {restarts}, \"probe_messages\": {probes}}}",
            id = quote(&self.id),
            suite = quote(&self.suite),
            workload = quote(&self.workload),
            table = quote(&self.table),
            threads = self.threads,
            shards = self.shards,
            resolution = quote(&self.resolution),
            fault = quote(&self.fault_plan),
            ops = self.ops,
            elapsed = fmt_f64(self.elapsed_ms),
            thr = fmt_f64(self.throughput_ops_per_s),
            p50 = fmt_f64(self.p50_us),
            p99 = fmt_f64(self.p99_us),
            p999 = fmt_f64(self.p999_us),
            restarts = self.restarts,
            probes = self.probe_messages,
        );
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let get = |k: &str| v.get(k).ok_or_else(|| format!("record missing `{k}`"));
        Ok(BenchRecord {
            id: get("id")?.as_str()?.to_string(),
            suite: get("suite")?.as_str()?.to_string(),
            workload: get("workload")?.as_str()?.to_string(),
            table: get("table")?.as_str()?.to_string(),
            threads: get("threads")?.as_f64()? as u32,
            shards: get("shards")?.as_f64()? as u32,
            resolution: get("resolution")?.as_str()?.to_string(),
            fault_plan: get("fault_plan")?.as_str()?.to_string(),
            ops: get("ops")?.as_f64()? as u64,
            elapsed_ms: get("elapsed_ms")?.as_f64()?,
            throughput_ops_per_s: get("throughput_ops_per_s")?.as_f64()?,
            p50_us: get("p50_us")?.as_f64()?,
            p99_us: get("p99_us")?.as_f64()?,
            p999_us: get("p999_us")?.as_f64()?,
            restarts: get("restarts")?.as_f64()? as u64,
            probe_messages: get("probe_messages")?.as_f64()? as u64,
        })
    }
}

/// Serializes a full bench file (schema header + records).
pub fn to_json(mode: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"kplock-bench/v1\",\n");
    let _ = writeln!(out, "  \"mode\": {},", quote(mode));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        r.to_json(&mut out, "    ");
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a bench file produced by [`to_json`] (or any JSON with the
/// same shape).
pub fn from_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let v = Json::parse(text)?;
    let schema = v
        .get("schema")
        .ok_or("missing `schema`")?
        .as_str()?
        .to_string();
    if schema != "kplock-bench/v1" {
        return Err(format!("unsupported schema {schema:?}"));
    }
    v.get("records")
        .ok_or("missing `records`")?
        .as_array()?
        .iter()
        .map(BenchRecord::from_json)
        .collect()
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_f64(x: f64) -> String {
    // `{}` prints the shortest representation that round-trips; NaN and
    // infinities are not valid JSON, so clamp them to null-ish zero.
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// A minimal JSON value — just enough to read bench files back.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, or a type error.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as a number, or a type error.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(x) => Ok(*x),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as an array, or a type error.
    pub fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} , got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ], got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: &str, thr: f64) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            suite: "hot_loop".to_string(),
            workload: "contended".to_string(),
            table: "queue".to_string(),
            threads: 8,
            shards: 16,
            resolution: "none".to_string(),
            fault_plan: "none".to_string(),
            ops: 1_000_000,
            elapsed_ms: 123.456,
            throughput_ops_per_s: thr,
            p50_us: 1.25,
            p99_us: 17.0,
            p999_us: 250.5,
            restarts: 3,
            probe_messages: 0,
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![sample("a", 1e6), sample("b", 2.5e5)];
        let text = to_json("full", &records);
        assert_eq!(from_json(&text).unwrap(), records);
    }

    #[test]
    fn parser_handles_escapes_nesting_and_whitespace() {
        let v =
            Json::parse(r#" { "a\"b" : [ 1, -2.5e3, true, false, null, "x\\\n" ], "o": { } } "#)
                .unwrap();
        let arr = v.get("a\"b").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-2500.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[5], Json::Str("x\\\n".to_string()));
        assert_eq!(v.get("o"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(from_json(r#"{"schema": "other/v9", "records": []}"#).is_err());
    }

    #[test]
    fn missing_record_fields_are_reported() {
        let text = r#"{"schema": "kplock-bench/v1", "records": [{"id": "x"}]}"#;
        let err = from_json(text).unwrap_err();
        assert!(err.contains("suite"), "{err}");
    }
}
