//! Regenerates every experiment row reported in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p kplock-bench --bin experiments`

use kplock_bench::{centralized_pair, two_site_pair};
use kplock_core::closure::try_unsafety_via_dominator;
use kplock_core::policy::LockStrategy;
use kplock_core::reduction::reduce;
use kplock_core::{
    analyze_pair, decide_exhaustive, decide_total_pair, decide_two_site_system, proposition2,
    ConflictDigraph, OracleOptions, OracleOutcome, Prop2Options, Prop2Verdict, SafetyVerdict,
};
use kplock_geometry::{plane_is_safe, PlanePicture};
use kplock_model::{EntityId, TxnId};
use kplock_sat::{solve, SatResult};
use kplock_sim::{
    run, DeadlockDetection, DeadlockResolution, LatencyModel, PreventionScheme, SimConfig,
    VictimPolicy,
};
use kplock_workload::{
    fig1, fig2, fig3, fig5, fig8_formula, random_instance, random_system, resolution_sweep,
    site_count_sweep, unsat_restricted, WorkloadParams,
};
use std::time::Instant;

fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

fn avg_time_us<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn exp_figures() {
    println!("## F1–F5: figure verification\n");
    println!("| figure | property | result |");
    println!("|---|---|---|");
    let sys = fig1();
    let v = decide_two_site_system(&sys).unwrap();
    let ok = v.certificate().map(|c| c.verify(&sys).is_ok()) == Some(true);
    println!("| Fig. 1 | two-site system unsafe, witness schedule verifies | {ok} |");

    let sys = fig2();
    let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
    let rx = *plane.rect_of(sys.db().entity("x").unwrap()).unwrap();
    let rz = *plane.rect_of(sys.db().entity("z").unwrap()).unwrap();
    let sep = kplock_geometry::separate(&plane, &rz, &rx).is_some();
    println!("| Fig. 2 | curve separates x- and z-rectangles (Prop. 1) | {sep} |");

    let sys = fig3();
    let a = analyze_pair(&sys);
    println!(
        "| Fig. 3 | D not strongly connected; unsafe by Thm 2 | {} |",
        !a.strongly_connected && a.verdict.is_unsafe()
    );

    let sys = fig5();
    let a = analyze_pair(&sys);
    let safe_exhaustive = matches!(a.verdict, SafetyVerdict::Safe(_));
    println!(
        "| Fig. 5 | D not strongly connected yet SAFE (4 sites) | {} |",
        !a.strongly_connected && safe_exhaustive
    );
    println!();
}

fn exp_fig8() {
    println!("## F8/F9: Theorem-3 reduction on the Fig. 8 formula\n");
    let f = fig8_formula();
    let r = reduce(&f).unwrap();
    let d = r.d_graph();
    let (doms, _) = kplock_graph::enumerate_dominators(&d.graph, 10_000);
    let mut desirable = 0;
    let mut certs = 0;
    for bits in &doms {
        let dom: Vec<EntityId> = bits.iter().map(|i| d.entities[i]).collect();
        if r.is_desirable(&dom) {
            desirable += 1;
        }
        if try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom).is_some() {
            certs += 1;
        }
    }
    println!("| quantity | value |");
    println!("|---|---|");
    println!(
        "| entities (one site each) | {} |",
        r.sys.db().entity_count()
    );
    println!("| steps per transaction | {} |", r.sys.txn(TxnId(0)).len());
    println!("| D matches intended digraph | {} |", r.verify_intended());
    println!("| dominators | {} |", doms.len());
    println!("| desirable dominators | {desirable} |");
    println!("| dominators yielding verified certificates | {certs} |");
    println!("| DPLL verdict | {:?} |", solve(&f).is_sat());
    println!(
        "| equivalence desirable == certificate | {} |",
        desirable == certs
    );
    println!();
}

fn exp_c1_two_site_scaling() {
    println!("## C1 (Corollary 1): two-site decision scaling\n");
    println!("| n steps/txn | decision µs | µs / n² × 10³ |");
    println!("|---|---|---|");
    for &n in &[8usize, 16, 32, 64, 128] {
        let sys = two_site_pair(7, n);
        let us = avg_time_us(20, || decide_two_site_system(&sys).unwrap());
        println!("| {n} | {us:.1} | {:.2} |", us * 1000.0 / (n * n) as f64);
    }
    println!();
}

fn exp_c2_centralized() {
    println!("## C2: centralized pair — graph method vs geometric method\n");
    println!("| n | graph (D + SCC) µs | geometric (Prop. 1) µs | agree |");
    println!("|---|---|---|---|");
    for &n in &[8usize, 16, 32, 64] {
        let sys = centralized_pair(11, n);
        let (gv, _) = time_us(|| decide_total_pair(&sys, TxnId(0), TxnId(1)));
        let graph_us = avg_time_us(20, || decide_total_pair(&sys, TxnId(0), TxnId(1)));
        let geo_us = avg_time_us(20, || {
            let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
            plane_is_safe(&plane)
        });
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        let agree = gv.is_safe() == plane_is_safe(&plane);
        println!("| {n} | {graph_us:.1} | {geo_us:.1} | {agree} |");
    }
    println!();
}

fn exp_c3_reduction() {
    println!("## C3 (Theorem 3): reduction pipeline scaling\n");
    println!("| formula | entities | steps/txn | build µs | DPLL µs | SAT | certificate µs |");
    println!("|---|---|---|---|---|---|---|");
    for &(vars, clauses) in &[(4usize, 3usize), (6, 5), (8, 7), (12, 10), (16, 14)] {
        let f = random_instance(1, vars, clauses);
        let (r, build_us) = time_us(|| reduce(&f).unwrap());
        let dpll_us = avg_time_us(10, || solve(&f));
        let (sat, cert_us) = match solve(&f) {
            SatResult::Sat(model) => {
                let dom = r.dominator_for_assignment(&model);
                let us = avg_time_us(3, || {
                    try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom)
                });
                (true, format!("{us:.0}"))
            }
            SatResult::Unsat => (false, "-".into()),
        };
        println!(
            "| {vars}v/{clauses}c | {} | {} | {build_us:.0} | {dpll_us:.1} | {sat} | {cert_us} |",
            r.sys.db().entity_count(),
            r.sys.txn(TxnId(0)).len()
        );
    }
    let f = unsat_restricted();
    let r = reduce(&f).unwrap();
    println!(
        "| unsat_restricted | {} | {} | - | - | false | - |",
        r.sys.db().entity_count(),
        r.sys.txn(TxnId(0)).len()
    );
    println!();
}

fn exp_c4_jump() {
    println!("## C4: exhaustive oracle vs polynomial test (the complexity jump)\n");
    // Safe (synchronized-2PL) instances force the oracle to exhaust the
    // whole reachable product space; Theorem 2 answers from D alone.
    println!("| distribution | verdict | oracle states | oracle µs | Thm-1 µs | speedup |");
    println!("|---|---|---|---|---|---|");
    for &sites in &[2usize, 3, 4, 5, 6] {
        let sys = wide_safe_pair(sites);
        let n = sys.txn(TxnId(0)).len();
        let opts = OracleOptions {
            max_states: 50_000_000,
        };
        let (report, oracle_us) = time_us(|| decide_exhaustive(&sys, &opts));
        // The polynomial side: Theorem 1's strong-connectivity test (the
        // instances keep D complete, so it proves safety at any #sites).
        let poly_us = avg_time_us(50, || {
            let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
            assert!(d.is_strongly_connected());
        });
        let verdict = match report.outcome {
            OracleOutcome::Safe => "safe",
            OracleOutcome::Unsafe(_) => "unsafe",
            OracleOutcome::Aborted => "aborted",
        };
        println!(
            "| {sites} sites ({n} steps/txn) | {verdict} | {} | {oracle_us:.0} | {poly_us:.1} | {:.0}x |",
            report.states_explored,
            oracle_us / poly_us
        );
    }
    println!();
}

fn exp_c5_prop2() {
    println!("## C5 (Proposition 2): k-transaction analysis\n");
    println!("| k | verdict | pairs checked | cycles checked | µs |");
    println!("|---|---|---|---|---|");
    for k in [2usize, 3, 4, 5, 6] {
        let sys = random_system(&WorkloadParams {
            seed: 13,
            sites: 2,
            entities_per_site: 3,
            transactions: k,
            steps_per_txn: 5,
            strategy: LockStrategy::TwoPhaseSync,
            ..Default::default()
        });
        let (report, us) = time_us(|| proposition2(&sys, &Prop2Options::default()));
        let verdict = match report.verdict {
            Prop2Verdict::Safe => "safe",
            Prop2Verdict::UnsafePair => "unsafe(pair)",
            Prop2Verdict::UnsafeCycle => "unsafe(cycle)",
            Prop2Verdict::Unknown => "unknown",
        };
        println!(
            "| {k} | {verdict} | {} | {} | {us:.0} |",
            report.pair_verdicts.len(),
            report.cycle_checks.len()
        );
    }
    println!();
}

fn exp_s1_sim() {
    println!("## S1: simulator — strategy × contention\n");
    println!(
        "| strategy | contention | commits/run | aborts/run | msgs/run | wait/run | anomalies |"
    );
    println!("|---|---|---|---|---|---|---|");
    for strategy in [
        LockStrategy::Minimal,
        LockStrategy::TwoPhaseLoose,
        LockStrategy::TwoPhaseSync,
    ] {
        for (label, entities) in [("high", 1usize), ("low", 4)] {
            let sys = random_system(&WorkloadParams {
                seed: 21,
                sites: 3,
                entities_per_site: entities,
                transactions: 4,
                steps_per_txn: 6,
                strategy,
                ..Default::default()
            });
            let runs = 60u64;
            let mut commits = 0usize;
            let mut aborts = 0usize;
            let mut msgs = 0u64;
            let mut wait = 0u64;
            let mut anomalies = 0usize;
            for seed in 0..runs {
                let r = run(
                    &sys,
                    &SimConfig {
                        seed,
                        latency: LatencyModel::Uniform(1, 20),
                        ..Default::default()
                    },
                )
                .expect("valid config");
                if !r.finished() {
                    continue;
                }
                commits += r.metrics.committed;
                aborts += r.metrics.aborts;
                msgs += r.metrics.messages;
                wait += r.metrics.lock_wait_ticks;
                if !r.audit.serializable {
                    anomalies += 1;
                }
            }
            println!(
                "| {strategy:?} | {label} | {:.1} | {:.1} | {} | {} | {anomalies}/{runs} |",
                commits as f64 / runs as f64,
                aborts as f64 / runs as f64,
                msgs / runs,
                wait / runs
            );
        }
    }
    println!();
}

fn exp_s2_victim_ablation() {
    println!("## Ablation: deadlock victim policy\n");
    println!("| policy | deadlocks/run | aborts/run | makespan avg |");
    println!("|---|---|---|---|");
    // Deadlock-prone workload: four two-phase transactions locking the
    // same entities in rotated orders.
    let sys = deadlock_prone_system();
    for policy in [VictimPolicy::Youngest, VictimPolicy::Oldest] {
        let runs = 60u64;
        let mut deadlocks = 0usize;
        let mut aborts = 0usize;
        let mut makespan = 0u64;
        for seed in 0..runs {
            let r = run(
                &sys,
                &SimConfig {
                    seed,
                    latency: LatencyModel::Fixed(5),
                    victim_policy: policy,
                    ..Default::default()
                },
            )
            .expect("valid config");
            deadlocks += r.metrics.deadlocks_resolved;
            aborts += r.metrics.aborts;
            makespan += r.metrics.makespan;
        }
        println!(
            "| {policy:?} | {:.2} | {:.2} | {} |",
            deadlocks as f64 / runs as f64,
            aborts as f64 / runs as f64,
            makespan / runs
        );
    }
    println!();
}

fn exp_d1_detection() {
    println!("## D1: deadlock detection — centralized scans vs distributed probes\n");
    println!(
        "Distributed (Probe) detection sees only site-local wait-edges; its\n\
         costs below are *simulated* messages and ticks, the units the paper\n\
         argues in. The scan schemes consult a global graph for free.\n"
    );
    println!("| sites | scheme | deadlocks/run | msgs/run | probe msgs/run | detect lat/deadlock | makespan avg |");
    println!("|---|---|---|---|---|---|---|");
    let base = WorkloadParams {
        seed: 31,
        transactions: 5,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    };
    for sc in site_count_sweep(&base, 6, &[1, 2, 3, 6]) {
        for (detection, tag) in [
            (DeadlockDetection::Periodic, "periodic"),
            (DeadlockDetection::OnBlock, "onblock"),
            (DeadlockDetection::Probe, "probe"),
        ] {
            let runs = 60u64;
            let (mut deadlocks, mut msgs, mut probes, mut lat, mut makespan) = (0, 0, 0, 0, 0u64);
            for seed in 0..runs {
                let r = run(
                    &sc.system,
                    &SimConfig {
                        seed,
                        latency: LatencyModel::Fixed(10),
                        resolution: detection.into(),
                        ..Default::default()
                    },
                )
                .expect("valid config");
                assert!(r.finished(), "{} under {tag}", sc.name);
                deadlocks += r.metrics.deadlocks_resolved;
                msgs += r.metrics.messages;
                probes += r.metrics.probe_messages;
                lat += r.metrics.detection_latency_ticks;
                makespan += r.metrics.makespan;
            }
            println!(
                "| {} | {tag} | {:.2} | {} | {} | {} | {} |",
                sc.value,
                deadlocks as f64 / runs as f64,
                msgs / runs,
                probes / runs,
                if deadlocks > 0 {
                    lat / deadlocks as u64
                } else {
                    0
                },
                makespan / runs
            );
        }
    }
    println!();
}

/// The five arms of the resolution axis compared in D2.
const D2_ARMS: [(DeadlockResolution, &str); 5] = [
    (
        DeadlockResolution::Detect(DeadlockDetection::Periodic),
        "periodic",
    ),
    (
        DeadlockResolution::Detect(DeadlockDetection::Probe),
        "probe",
    ),
    (
        DeadlockResolution::Prevent(PreventionScheme::WoundWait),
        "wound-wait",
    ),
    (
        DeadlockResolution::Prevent(PreventionScheme::WaitDie),
        "wait-die",
    ),
    (
        DeadlockResolution::Prevent(PreventionScheme::NoWait),
        "no-wait",
    ),
];

/// Runs `sys` under every D2 arm and prints one row per arm with the
/// given leading cells. Restarts-vs-messages is the trade the table
/// exists to show: detection pays probe messages and detection latency,
/// prevention pays restarts.
fn d2_rows(lead: &str, sys: &kplock_model::TxnSystem, latency: u64) {
    for (resolution, tag) in D2_ARMS {
        let runs = 40u64;
        let (mut deadlocks, mut restarts, mut aborts, mut msgs, mut probes, mut makespan) =
            (0usize, 0usize, 0usize, 0u64, 0u64, 0u64);
        for seed in 0..runs {
            let r = run(
                sys,
                &SimConfig {
                    seed,
                    latency: LatencyModel::Fixed(latency),
                    resolution,
                    ..Default::default()
                },
            )
            .expect("valid config");
            assert!(r.finished(), "{lead} under {tag}");
            if matches!(resolution, DeadlockResolution::Prevent(_)) {
                assert_eq!(r.metrics.deadlocks_resolved, 0, "{lead} under {tag}");
            }
            deadlocks += r.metrics.deadlocks_resolved;
            restarts += r.metrics.prevention_restarts;
            aborts += r.metrics.aborts;
            msgs += r.metrics.messages;
            probes += r.metrics.probe_messages;
            makespan += r.metrics.makespan;
        }
        println!(
            "| {lead} | {tag} | {:.2} | {:.2} | {:.2} | {} | {} | {} |",
            deadlocks as f64 / runs as f64,
            restarts as f64 / runs as f64,
            aborts as f64 / runs as f64,
            msgs / runs,
            probes / runs,
            makespan / runs
        );
    }
}

fn exp_d2_prevention() {
    println!("## D2: deadlock resolution — detection vs prevention\n");
    println!(
        "Prevention (wound-wait / wait-die / no-wait) never lets a cycle\n\
         form: it answers from the requester's and holders' birth stamps,\n\
         locally at the table, and pays in *restarts* what detection pays\n\
         in probe messages and detection latency. Same rotated-lock-order\n\
         workload everywhere (6 entities, 4 sync-2PL transactions); only\n\
         the swept axis changes.\n"
    );
    println!("### Site count (latency 10)\n");
    println!("| sites | scheme | deadlocks/run | prevention restarts/run | aborts/run | msgs/run | probe msgs/run | makespan avg |");
    println!("|---|---|---|---|---|---|---|---|");
    for sc in resolution_sweep(6, 4, &[1, 2, 3, 6]) {
        d2_rows(&sc.value.to_string(), &sc.system, 10);
    }
    println!();
    println!("### Network latency (3 sites)\n");
    println!("| latency | scheme | deadlocks/run | prevention restarts/run | aborts/run | msgs/run | probe msgs/run | makespan avg |");
    println!("|---|---|---|---|---|---|---|---|");
    let three_sites = &resolution_sweep(6, 4, &[3])[0];
    for latency in [2u64, 10, 40] {
        d2_rows(&latency.to_string(), &three_sites.system, latency);
    }
    println!();
    println!("### Hot-site skew (3 sites, latency 10, random sync-2PL load)\n");
    println!("| hot % | scheme | deadlocks/run | prevention restarts/run | aborts/run | msgs/run | probe msgs/run | makespan avg |");
    println!("|---|---|---|---|---|---|---|---|");
    for hot in [0u32, 50, 90] {
        let sys = random_system(&WorkloadParams {
            seed: 31,
            sites: 3,
            entities_per_site: 2,
            transactions: 5,
            steps_per_txn: 6,
            hot_site_percent: hot,
            strategy: LockStrategy::TwoPhaseSync,
            ..Default::default()
        });
        d2_rows(&hot.to_string(), &sys, 10);
    }
    println!();
}

fn exp_d3_faults() {
    use kplock_sim::{FaultPlan, RunOutcome};
    println!("## D3: fault injection — detection latency and restarts vs loss rate\n");
    println!(
        "Same rotated-lock-order workload as D2 (6 entities, 4 sync-2PL\n\
         transactions, 3 sites, latency 10), now over lossy channels with\n\
         coordinator retransmission. Probes must survive the same faulty\n\
         network as the data — lost probes are re-chased on retransmit —\n\
         while wound-wait's restarts come from local arithmetic and only\n\
         suffer the data traffic's retries. 30 fault seeds per row.\n"
    );
    println!("| loss | scheme | completed | drops/run | msgs/run | deadlocks/run | detect lat/deadlock | restarts/run | makespan avg |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let sys = &resolution_sweep(6, 4, &[3])[0].system;
    for &loss in &[0.0f64, 0.05, 0.1, 0.2, 0.3] {
        for (resolution, tag) in [
            (
                DeadlockResolution::Detect(DeadlockDetection::Probe),
                "probe",
            ),
            (
                DeadlockResolution::Prevent(PreventionScheme::WoundWait),
                "wound-wait",
            ),
        ] {
            let runs = 30u64;
            let (mut completed, mut drops, mut msgs, mut deadlocks, mut lat, mut restarts) =
                (0u64, 0u64, 0u64, 0usize, 0u64, 0usize);
            let mut makespan = 0u64;
            for seed in 0..runs {
                let faults = if loss > 0.0 {
                    FaultPlan::lossy(seed, loss, 0.0, 0.0)
                } else {
                    FaultPlan::none()
                };
                let r = run(
                    sys,
                    &SimConfig {
                        latency: LatencyModel::Fixed(10),
                        resolution,
                        faults,
                        max_time: 2_000_000,
                        ..Default::default()
                    },
                )
                .expect("valid config");
                if r.outcome == RunOutcome::Completed {
                    completed += 1;
                    makespan += r.metrics.makespan;
                }
                drops += r.metrics.messages_dropped;
                msgs += r.metrics.messages;
                deadlocks += r.metrics.deadlocks_resolved;
                lat += r.metrics.detection_latency_ticks;
                restarts += r.metrics.prevention_restarts;
            }
            println!(
                "| {loss:.2} | {tag} | {completed}/{runs} | {:.1} | {} | {:.2} | {} | {:.2} | {} |",
                drops as f64 / runs as f64,
                msgs / runs,
                deadlocks as f64 / runs as f64,
                if deadlocks > 0 {
                    lat / deadlocks as u64
                } else {
                    0
                },
                restarts as f64 / runs as f64,
                makespan.checked_div(completed).unwrap_or(0),
            );
        }
    }
    println!();
}

fn exp_d4_avoidance() {
    use kplock_sim::{AvoidPlan, RunOutcome};
    use kplock_workload::avoid_mix_sweep;
    println!("## D4: deadlock resolution — detect vs prevent vs avoid\n");
    println!(
        "The avoidance arm runs the paper's static analysis at runtime: a\n\
         plan synthesized before the run certifies transactions against a\n\
         safe lock order (per-site local controllers) and meters the rest\n\
         through wound-wait. Three deterministic workload families at\n\
         latency 5: the fully certified aligned mix (avoidance's silent\n\
         regime — zero deadlock-handling work of any kind), a half\n\
         certified mix (the boundary), and the rotated-lock-order family\n\
         (pairwise-opposed orders; greedy certification covers exactly one\n\
         transaction). `cert` is certified/declared under the avoid arm.\n"
    );
    println!(
        "| family | scheme | cert | deadlocks | restarts | aborts | msgs | probe msgs | makespan |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    let rotated = resolution_sweep(6, 4, &[3]).pop().expect("one scenario");
    let families: Vec<(&str, kplock_model::TxnSystem, AvoidPlan)> = {
        let mut fams = Vec::new();
        for sc in avoid_mix_sweep(6, 4, 3, &[4, 2]) {
            let name: &'static str = if sc.certified == 4 {
                "aligned certified=4/4"
            } else {
                "mixed certified=2/4"
            };
            fams.push((name, sc.system, sc.plan));
        }
        let plan = AvoidPlan::synthesize(&rotated.system);
        assert_eq!(plan.certified_count(), 1, "rotated orders certify one");
        fams.push(("rotated certified=1/4", rotated.system, plan));
        fams
    };
    for (family, sys, plan) in &families {
        for (resolution, tag) in [
            (
                DeadlockResolution::Detect(DeadlockDetection::Periodic),
                "periodic",
            ),
            (
                DeadlockResolution::Detect(DeadlockDetection::Probe),
                "probe",
            ),
            (
                DeadlockResolution::Prevent(PreventionScheme::WoundWait),
                "wound-wait",
            ),
            (DeadlockResolution::Avoid, "avoid"),
        ] {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                resolution,
                avoid: (resolution == DeadlockResolution::Avoid).then(|| plan.clone()),
                ..Default::default()
            };
            let r = run(sys, &cfg).expect("valid config");
            assert_eq!(r.outcome, RunOutcome::Completed, "{family} under {tag}");
            assert!(r.audit.serializable, "{family} under {tag}");
            if resolution == DeadlockResolution::Avoid {
                // The headline claim: avoidance never resolves a deadlock,
                // and on certified sets it is *silent* — no restarts, no
                // detection messages.
                assert_eq!(r.metrics.deadlocks_resolved, 0, "{family}");
                assert_eq!(r.metrics.probe_messages, 0, "{family}");
                if plan.fully_certified() {
                    assert_eq!(r.metrics.prevention_restarts, 0, "{family}");
                    assert_eq!(r.metrics.aborts, 0, "{family}");
                }
            }
            let cert = if resolution == DeadlockResolution::Avoid {
                format!("{}/{}", plan.certified_count(), plan.txn_count())
            } else {
                "—".to_string()
            };
            println!(
                "| {family} | {tag} | {cert} | {} | {} | {} | {} | {} | {} |",
                r.metrics.deadlocks_resolved,
                r.metrics.prevention_restarts,
                r.metrics.aborts,
                r.metrics.messages,
                r.metrics.probe_messages,
                r.metrics.makespan,
            );
        }
    }
    println!();
}

fn exp_safety_rates() {
    println!("## Strategy safety rates (static analysis, 40 random two-site pairs)\n");
    println!("| strategy | safe | unsafe | D strongly connected |");
    println!("|---|---|---|---|");
    for strategy in [
        LockStrategy::Minimal,
        LockStrategy::TwoPhaseLoose,
        LockStrategy::TwoPhaseSync,
    ] {
        let mut safe = 0;
        let mut unsafe_ = 0;
        let mut sc = 0;
        for seed in 0..40 {
            let sys = kplock_workload::random_pair(&WorkloadParams {
                seed,
                sites: 2,
                entities_per_site: 2,
                steps_per_txn: 5,
                strategy,
                ..Default::default()
            });
            let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
            if d.is_strongly_connected() {
                sc += 1;
            }
            match decide_two_site_system(&sys).unwrap() {
                SafetyVerdict::Safe(_) => safe += 1,
                SafetyVerdict::Unsafe(_) => unsafe_ += 1,
                SafetyVerdict::Unknown => {}
            }
        }
        println!("| {strategy:?} | {safe} | {unsafe_} | {sc} |");
    }
    println!();
}

fn exp_d5_sat_checker() {
    use kplock_core::{check_deadlock, check_safety, synthesize_optimal, SatSafety};
    use kplock_sim::{replay_deadlock, replay_violation};
    use kplock_workload::{certified_mix, opposed_mix};

    println!("## D5: exact decision — oracle vs SAT checker vs greedy vs optimal\n");
    println!(
        "The SAT checker (`kplock_core::sat_check`) encodes unsafety and\n\
         deadlock reachability as CNF over lock/unlock interleaving\n\
         variables and decides them with our own DPLL; the exhaustive\n\
         oracle explores the state space directly but is hard-capped at 8\n\
         transactions (`—` beyond). Every verdict here is cross-checked:\n\
         SAT witnesses replay through the per-site lock tables to an\n\
         actual non-serializable history or waits-for cycle, and the two\n\
         deciders must agree wherever both run. The last two columns\n\
         quantify greedy conservatism: on the opposed family the greedy\n\
         plan certifies exactly 1 transaction while iterated-SAT\n\
         `synthesize_optimal` certifies all descenders.\n"
    );
    println!(
        "| family | txns | milestones | oracle | states | t_oracle µs | sat | t_sat µs | clauses | dl(sat) | t_dl µs | greedy | optimal |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|");

    // (name, system, expect strict greedy<optimal gap).
    let mut families: Vec<(String, kplock_model::TxnSystem, bool)> = Vec::new();
    for k in [1usize, 2, 3, 5, 7] {
        families.push((format!("opposed(1+{k})"), opposed_mix(k, 2), k >= 2));
    }
    for n in [2usize, 3, 4, 6, 9] {
        // n early-unlock transactions over x then y: unsafe for n ≥ 2,
        // beyond the oracle's cap at n = 9.
        let db = kplock_model::Database::from_spec(&[("x", 0), ("y", 1)]);
        let txns = (0..n)
            .map(|i| {
                let mut b = kplock_model::TxnBuilder::new(&db, format!("E{i}"));
                b.script("Lx x Ux Ly y Uy").expect("script");
                b.build().expect("acyclic")
            })
            .collect();
        families.push((
            format!("earlyunlock({n})"),
            kplock_model::TxnSystem::new(db, txns),
            false,
        ));
    }
    for n in [3usize, 4] {
        families.push((
            format!("rotated(e3,f{n})"),
            certified_mix(3, 0, n, 2),
            false,
        ));
    }

    let mut gap_seen = false;
    for (name, sys, expect_gap) in &families {
        let (safety, t_sat) = time_us(|| check_safety(sys).expect("encodable system"));
        let sat_verdict = match &safety.verdict {
            SatSafety::Safe => "safe",
            SatSafety::Unsafe(w) => {
                let audit = replay_violation(sys, w).expect("witness must replay");
                assert!(!audit.serializable);
                "unsafe"
            }
        };
        let (dl, t_dl) = time_us(|| check_deadlock(sys).expect("encodable system"));
        if let Some(prefix) = &dl.deadlock {
            replay_deadlock(sys, prefix).expect("deadlock prefix must replay");
        }

        let (oracle_cell, states_cell, t_oracle_cell) = if sys.len() <= 8 {
            let (report, t_oracle) = time_us(|| decide_exhaustive(sys, &OracleOptions::default()));
            let verdict = match report.outcome {
                OracleOutcome::Safe => {
                    assert_eq!(sat_verdict, "safe", "{name}: SAT disagrees with oracle");
                    assert_eq!(
                        dl.deadlock.is_some(),
                        report.deadlock_reachable,
                        "{name}: deadlock verdicts disagree"
                    );
                    "safe"
                }
                OracleOutcome::Unsafe(_) => {
                    assert_eq!(sat_verdict, "unsafe", "{name}: SAT disagrees with oracle");
                    "unsafe"
                }
                OracleOutcome::Aborted => "aborted",
            };
            (
                verdict.to_string(),
                report.states_explored.to_string(),
                format!("{t_oracle:.0}"),
            )
        } else {
            ("—".to_string(), "—".to_string(), "—".to_string())
        };

        let opt = synthesize_optimal(sys);
        assert!(opt.optimal_count >= opt.greedy_count, "{name}");
        if *expect_gap {
            assert!(
                opt.optimal_count > opt.greedy_count,
                "{name}: expected strict greedy-vs-optimal gap"
            );
            gap_seen = true;
        }
        opt.plan.verify(sys).expect("optimal plan verifies");

        let milestones = sys
            .txns()
            .iter()
            .map(|t| 2 * t.locked_entities().len())
            .sum::<usize>();
        println!(
            "| {name} | {} | {milestones} | {oracle_cell} | {states_cell} | {t_oracle_cell} | {sat_verdict} | {t_sat:.0} | {} | {} | {t_dl:.0} | {} | {} |",
            sys.len(),
            safety.stats.clauses,
            if dl.deadlock.is_some() { "yes" } else { "no" },
            opt.greedy_count,
            opt.optimal_count,
        );
    }
    assert!(gap_seen, "D5 must exhibit a family where optimal > greedy");
    println!();
}

fn exp_d6_hierarchy() {
    use kplock_model::hierarchy::Granularity;
    use kplock_sim::{run_with_arrivals, FaultPlan};
    use kplock_workload::{hierarchy_system, AccessProfile, HierarchyParams};
    println!("## D6: multi-granularity locking — hierarchical vs flat at 10⁵ records\n");
    println!(
        "Scan-heavy open-loop traffic over a two-level catalog of 100 files\n\
         × 1000 records (10⁵ entities on 4 sites): every transaction scans\n\
         one Zipf-chosen file and updates two records. The flat arm locks\n\
         each record individually; the hierarchical arm escalates to one\n\
         `SIX` file lock plus `X` record locks on the writes (threshold\n\
         16). Identical logical accesses in both arms, full-matrix\n\
         invariant audit armed everywhere, including the lossy fault rows\n\
         (5% loss / 2% duplication / 10% reorder).\n"
    );
    println!(
        "| granularity | resolution | faults | lock reqs | reqs/shard | msgs | deadlocks | makespan |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let p = HierarchyParams {
        profile: AccessProfile::Scan,
        files: 100,
        records_per_file: 1000,
        sites: 4,
        transactions: 10,
        zipf_theta: 0.6,
        arrival_gap: 50,
        seed: 3,
    };
    let arms = [
        ("flat", Granularity::Flat),
        (
            "hier(t=16)",
            Granularity::Hierarchical {
                escalation_threshold: 16,
            },
        ),
    ];
    let mut headline: Vec<u64> = Vec::new(); // [flat, hier] lock reqs, detect/none row
    for (glabel, g) in arms {
        let sc = hierarchy_system(&p, g);
        for (resolution, rtag) in [
            (
                DeadlockResolution::Detect(DeadlockDetection::Periodic),
                "periodic",
            ),
            (
                DeadlockResolution::Detect(DeadlockDetection::Probe),
                "probe",
            ),
            (
                DeadlockResolution::Prevent(PreventionScheme::WoundWait),
                "wound-wait",
            ),
        ] {
            for (faults, ftag) in [
                (FaultPlan::none(), "none"),
                (FaultPlan::lossy(7, 0.05, 0.02, 0.10), "lossy"),
            ] {
                let r = run_with_arrivals(
                    &sc.system,
                    &SimConfig {
                        seed: 17,
                        latency: LatencyModel::Fixed(5),
                        resolution,
                        faults,
                        invariant_audit: true,
                        max_time: 20_000_000,
                        ..Default::default()
                    },
                    &sc.arrivals,
                )
                .expect("valid config");
                assert!(r.finished(), "{glabel}/{rtag}/{ftag}");
                r.audit
                    .legal
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{glabel}/{rtag}/{ftag}: {e}"));
                assert_eq!(
                    r.metrics.deadlocks_resolved, 0,
                    "{glabel}/{rtag}/{ftag}: one-file scans must not deadlock"
                );
                if rtag == "periodic" && ftag == "none" {
                    headline.push(r.metrics.lock_requests);
                }
                println!(
                    "| {glabel} | {rtag} | {ftag} | {} | {} | {} | {} | {} |",
                    r.metrics.lock_requests,
                    r.metrics.lock_requests / p.sites as u64,
                    r.metrics.messages,
                    r.metrics.deadlocks_resolved,
                    r.metrics.makespan,
                );
            }
        }
    }
    let (flat, hier) = (headline[0], headline[1]);
    assert!(
        flat >= 5 * hier,
        "acceptance: expected ≥5× fewer lock requests hierarchically, got flat {flat} vs hier {hier}"
    );
    println!(
        "\n(headline: flat needs {:.1}× the lock requests of hierarchical — gate is ≥5×)\n",
        flat as f64 / hier as f64
    );
}

fn exp_d7_delegation() {
    use kplock_sim::{Delegation, FaultPlan, RunOutcome};
    use kplock_workload::{hot_site_sweep, zipf_sweep};
    println!("## D7: delegated ownership — cached grants vs always-remote\n");
    println!(
        "Read-heavy skewed traffic (3 sites, 24 entities/site, 10 sync-2PL\n\
         transactions of 10 steps, 90% reads, latency 5), summed over 20\n\
         sim seeds per cell. The hot-site workload sends 95% of accesses to\n\
         site 0; the Zipfian workload skews within-site entity choice at\n\
         θ = 0.9. `off`/`on` count acquire/release messages (lock traffic)\n\
         without and with delegation; a cache hit is a re-acquire served\n\
         from a delegated grant with zero messages. Shared grants delegate\n\
         to any number of reader coordinators at once, so the read-mostly\n\
         mix revokes rarely and even no-wait's retries land as cache hits\n\
         (at write-heavy mixes its retry storms instead ping-pong entries\n\
         through revoke/re-grant cycles and delegation loses outright).\n"
    );
    println!(
        "| workload | scheme | off acq/rel | on acq/rel | ratio | cache hits | revocations | saved | aborts(on) |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    let base = WorkloadParams {
        seed: 42,
        sites: 3,
        entities_per_site: 24,
        transactions: 10,
        steps_per_txn: 10,
        read_percent: 90,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    };
    let mut scenarios = hot_site_sweep(&base, &[95]);
    scenarios.extend(zipf_sweep(&base, &[0.9]));
    let arms = [
        (
            DeadlockResolution::Detect(DeadlockDetection::Periodic),
            "periodic",
        ),
        (
            DeadlockResolution::Detect(DeadlockDetection::OnBlock),
            "on-block",
        ),
        (
            DeadlockResolution::Detect(DeadlockDetection::Probe),
            "probe",
        ),
        (
            DeadlockResolution::Prevent(PreventionScheme::WoundWait),
            "wound-wait",
        ),
        (
            DeadlockResolution::Prevent(PreventionScheme::WaitDie),
            "wait-die",
        ),
        (
            DeadlockResolution::Prevent(PreventionScheme::NoWait),
            "no-wait",
        ),
    ];
    let runs = 20u64;
    // Per workload: the best (off, on) lock-traffic pair across arms.
    let mut headline: Vec<(String, &str, u64, u64)> = Vec::new();
    for sc in &scenarios {
        let mut best: Option<(&str, u64, u64)> = None;
        for (resolution, tag) in arms {
            let (mut off_lt, mut on_lt) = (0u64, 0u64);
            let (mut hits, mut revs, mut saved, mut aborts) = (0u64, 0u64, 0u64, 0usize);
            for seed in 0..runs {
                let mk = |delegation| SimConfig {
                    seed,
                    latency: LatencyModel::Fixed(5),
                    resolution,
                    delegation,
                    invariant_audit: true,
                    max_time: 2_000_000,
                    ..Default::default()
                };
                for delegation in [Delegation::Off, Delegation::On] {
                    let r = run(&sc.system, &mk(delegation)).expect("valid config");
                    assert_eq!(r.outcome, RunOutcome::Completed, "{}/{tag}", sc.name);
                    r.audit
                        .legal
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{}/{tag}: {e}", sc.name));
                    if delegation == Delegation::Off {
                        off_lt += r.metrics.lock_traffic;
                    } else {
                        on_lt += r.metrics.lock_traffic;
                        hits += r.metrics.cache_hits;
                        revs += r.metrics.revocations;
                        saved += r.metrics.messages_saved;
                        aborts += r.metrics.aborts;
                    }
                }
            }
            if best.is_none_or(|(_, bo, bn)| off_lt * bn > bo * on_lt) {
                best = Some((tag, off_lt, on_lt));
            }
            println!(
                "| {} | {tag} | {off_lt} | {on_lt} | {:.2} | {hits} | {revs} | {saved} | {aborts} |",
                sc.name,
                off_lt as f64 / on_lt as f64,
            );
        }
        let (tag, off_lt, on_lt) = best.expect("six arms ran");
        headline.push((sc.name.clone(), tag, off_lt, on_lt));
    }
    println!();
    for (name, tag, off_lt, on_lt) in &headline {
        assert!(
            *off_lt >= 2 * on_lt,
            "acceptance: expected ≥2× acquire/release reduction on {name}, \
             best arm {tag} got off {off_lt} vs on {on_lt}"
        );
        println!(
            "(headline: {name} {tag} cuts acquire/release traffic {:.2}× — gate is ≥2×)",
            *off_lt as f64 / *on_lt as f64
        );
    }

    // Revocation under a hostile network: 30% loss with coordinator
    // retransmission, plus 5% duplication and 10% reorder so revokes are
    // also duplicated and delivered late. Every resolution arm must still
    // complete with a legal, serializable history — the audit would flag a
    // stale cached grant surviving a revocation the instant it double-owns
    // an entity.
    println!("\n30%-loss fault plan (5% dup, 10% reorder), delegation on, 10 fault seeds:\n");
    println!("| workload | scheme | completed | drops/run | revocations | leases expired | makespan avg |");
    println!("|---|---|---|---|---|---|---|");
    for sc in &scenarios {
        for (resolution, tag) in arms {
            let runs = 10u64;
            let (mut drops, mut revs, mut expired, mut makespan) = (0u64, 0u64, 0usize, 0u64);
            for seed in 0..runs {
                let r = run(
                    &sc.system,
                    &SimConfig {
                        seed,
                        latency: LatencyModel::Fixed(5),
                        resolution,
                        delegation: Delegation::On,
                        faults: FaultPlan::lossy(seed, 0.3, 0.05, 0.10),
                        invariant_audit: true,
                        max_time: 20_000_000,
                        ..Default::default()
                    },
                )
                .expect("valid config");
                assert_eq!(r.outcome, RunOutcome::Completed, "{}/{tag}/loss", sc.name);
                r.audit
                    .legal
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{}/{tag}/loss: {e}", sc.name));
                assert!(r.audit.serializable, "{}/{tag}/loss", sc.name);
                drops += r.metrics.messages_dropped;
                revs += r.metrics.revocations;
                expired += r.metrics.leases_expired;
                makespan += r.metrics.makespan;
            }
            println!(
                "| {} | {tag} | {runs}/{runs} | {:.1} | {revs} | {expired} | {} |",
                sc.name,
                drops as f64 / runs as f64,
                makespan / runs,
            );
        }
    }
    println!();
}

fn exp_oracle_deadlock() {
    println!("## Geometric vs state-space deadlock detection (centralized pairs)\n");
    println!("| seed | geometric deadlock | oracle deadlock | agree |");
    println!("|---|---|---|---|");
    let mut all_agree = true;
    for seed in 0..8 {
        let sys = centralized_pair(seed, 6);
        let t1 = sys.txn(TxnId(0));
        let t2 = sys.txn(TxnId(1));
        if !(t1.is_total_order() && t2.is_total_order()) {
            continue;
        }
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        let geo = kplock_geometry::has_deadlock(&plane);
        let oracle = decide_exhaustive(&sys, &OracleOptions::default());
        let odl = oracle.deadlock_reachable;
        let agree = geo == odl;
        all_agree &= agree;
        println!("| {seed} | {geo} | {odl} | {agree} |");
    }
    println!("(all agree: {all_agree})\n");
}

/// Four two-phase transactions locking x, y, z in rotated orders: a
/// deadlock-prone but safe workload.
fn deadlock_prone_system() -> kplock_model::TxnSystem {
    use kplock_model::{Database, TxnBuilder, TxnSystem};
    let db = Database::from_spec(&[("x", 0), ("y", 0), ("z", 1)]);
    let orders = [
        "Lx Ly Lz x y z Ux Uy Uz",
        "Ly Lz Lx y z x Uy Uz Ux",
        "Lz Lx Ly z x y Uz Ux Uy",
        "Lx Lz Ly x z y Ux Uz Uy",
    ];
    let txns = orders
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
            b.script(s).unwrap();
            b.build().unwrap()
        })
        .collect();
    TxnSystem::new(db, txns)
}

/// A *safe* pair whose concurrency grows with distribution: two entities at
/// site 0 accessed in synchronized-2PL fashion (D complete => safe by
/// Theorem 1), plus one private entity per extra site, each a concurrent
/// per-site chain. The oracle's reachable product space grows exponentially
/// with the number of sites; Theorem 2 only ever looks at D.
fn wide_safe_pair(sites: usize) -> kplock_model::TxnSystem {
    use kplock_model::{Database, TxnBuilder, TxnSystem};
    let mut spec: Vec<(String, usize)> = vec![("a".into(), 0), ("b".into(), 0)];
    for s in 1..sites {
        spec.push((format!("p{s}"), s)); // private to T1
        spec.push((format!("q{s}"), s)); // private to T2
    }
    let spec_ref: Vec<(&str, usize)> = spec.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let db = Database::from_spec(&spec_ref);
    let mk = |name: &str, private: char| {
        let mut b = TxnBuilder::new(&db, name);
        b.script("La Lb a b Ua Ub").unwrap();
        for s in 1..sites {
            b.script(&format!("L{private}{s} {private}{s} U{private}{s}"))
                .unwrap();
        }
        b.build().unwrap()
    };
    let (t1, t2) = (mk("T1", 'p'), mk("T2", 'q'));
    TxnSystem::new(db, vec![t1, t2])
}

fn exp_s3_load_sweep() {
    println!("## S3: open-loop load sweep (arrival spacing vs contention)\n");
    println!("| mean gap | lock-wait/run | deadlocks/run | anomalies |");
    println!("|---|---|---|---|");
    let sys = random_system(&WorkloadParams {
        seed: 31,
        sites: 3,
        entities_per_site: 2,
        transactions: 6,
        steps_per_txn: 5,
        strategy: LockStrategy::Minimal,
        ..Default::default()
    });
    for gap in [0u64, 50, 200, 800] {
        let runs = 40u64;
        let mut wait = 0u64;
        let mut deadlocks = 0usize;
        let mut anomalies = 0usize;
        for seed in 0..runs {
            let r = kplock_sim::run_open_loop(
                &sys,
                &SimConfig {
                    seed,
                    latency: LatencyModel::Uniform(1, 20),
                    ..Default::default()
                },
                &kplock_sim::ArrivalConfig {
                    mean_gap: gap,
                    seed,
                },
            )
            .expect("valid config");
            if !r.finished() {
                continue;
            }
            wait += r.metrics.lock_wait_ticks;
            deadlocks += r.metrics.deadlocks_resolved;
            if !r.audit.serializable {
                anomalies += 1;
            }
        }
        println!(
            "| {gap} | {} | {:.2} | {anomalies}/{runs} |",
            wait / runs,
            deadlocks as f64 / runs as f64
        );
    }
    println!();
}

fn main() {
    println!("# kplock experiment tables\n");
    println!("(regenerate with `cargo run --release -p kplock-bench --bin experiments`)\n");
    exp_figures();
    exp_fig8();
    exp_c1_two_site_scaling();
    exp_c2_centralized();
    exp_c3_reduction();
    exp_c4_jump();
    exp_c5_prop2();
    exp_safety_rates();
    exp_s1_sim();
    exp_s2_victim_ablation();
    exp_s3_load_sweep();
    exp_d1_detection();
    exp_d2_prevention();
    exp_d3_faults();
    exp_d4_avoidance();
    exp_d5_sat_checker();
    exp_d6_hierarchy();
    exp_d7_delegation();
    exp_oracle_deadlock();
    // Exercise OracleOutcome import.
    let _ = |o: OracleOutcome| matches!(o, OracleOutcome::Safe);
}
