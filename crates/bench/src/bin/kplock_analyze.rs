//! `kplock-analyze`: the static-analysis regression gate.
//!
//! Runs the exact SAT checker (`kplock_core::sat_check`) over the
//! built-in workload corpora and *cross-examines every verdict*:
//!
//! * safety verdicts must match the exhaustive oracle wherever the
//!   oracle can decide, and the pinned expectation of every named
//!   corpus system;
//! * every `Unsafe` verdict must ship a witness schedule that replays
//!   through the real per-site lock tables to a legal,
//!   **non**-serializable committed history
//!   (`kplock_sim::replay_violation`);
//! * every deadlock verdict must replay to a total stall with a
//!   waits-for cycle in the tables (`kplock_sim::replay_deadlock`), and
//!   deadlock reachability must match the oracle on fully explored
//!   systems;
//! * `synthesize_optimal` must certify at least as much as greedy
//!   everywhere, strictly more on the opposed family (where the gap is
//!   by construction), and its plan must pass `AvoidPlan::verify`.
//!
//! Any discrepancy prints a `FAIL` row and the process exits nonzero —
//! CI runs `kplock-analyze --smoke` as a merge gate. `--full` widens the
//! corpus (more random seeds, larger families); the default is `--full`.
//!
//! ```text
//! kplock-analyze [--smoke|--full]
//! ```

use kplock_core::{
    check_deadlock, check_safety, decide_exhaustive, synthesize_optimal, OracleOptions,
    OracleOutcome, SatSafety,
};
use kplock_model::TxnSystem;
use kplock_sim::{replay_deadlock, replay_violation};
use kplock_workload::{certified_mix, opposed_mix, regression_corpus, NamedSystem};

struct Opts {
    smoke: bool,
}

fn usage() -> ! {
    eprintln!("usage: kplock-analyze [--smoke|--full]");
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts { smoke: false };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--full" => opts.smoke = false,
            _ => usage(),
        }
    }
    opts
}

/// One corpus entry: a system, optional pinned safety expectation, and
/// whether the greedy-vs-optimal gap must be strict.
struct Case {
    name: String,
    sys: TxnSystem,
    expected_safe: Option<bool>,
    expect_gap: bool,
}

fn corpus(smoke: bool) -> Vec<Case> {
    // The corpus repeats each generator strategy under several seeds with
    // the same name; smoke keeps the first of each (plus all figures).
    let mut seen: Vec<&'static str> = Vec::new();
    let mut index = std::collections::HashMap::<&'static str, usize>::new();
    let mut cases: Vec<Case> = regression_corpus()
        .into_iter()
        .filter(|ns: &NamedSystem| {
            let keep = !smoke || !seen.contains(&ns.name);
            seen.push(ns.name);
            keep
        })
        .map(|ns| {
            let n = index.entry(ns.name).or_default();
            *n += 1;
            Case {
                name: format!("{}#{n}", ns.name),
                sys: ns.sys,
                expected_safe: ns.expected_safe,
                expect_gap: false,
            }
        })
        .collect();
    let opposed_ks: &[usize] = if smoke { &[2, 3] } else { &[2, 3, 4, 5] };
    for &k in opposed_ks {
        cases.push(Case {
            name: format!("opposed(1+{k})"),
            sys: opposed_mix(k, 2),
            // Synchronized 2PL: safe (deadlock-prone, but every complete
            // schedule serializable).
            expected_safe: Some(true),
            expect_gap: true,
        });
    }
    let mixes: &[(usize, usize, usize)] = if smoke {
        &[(3, 1, 2), (3, 0, 3)]
    } else {
        &[(3, 1, 2), (3, 0, 3), (4, 2, 2), (4, 0, 4)]
    };
    for &(entities, certified, fallback) in mixes {
        cases.push(Case {
            name: format!("mix(e{entities},c{certified},f{fallback})"),
            sys: certified_mix(entities, certified, fallback, 2),
            expected_safe: Some(true),
            expect_gap: false,
        });
    }
    cases
}

fn main() {
    let opts = parse_opts();
    let cases = corpus(opts.smoke);
    eprintln!(
        "kplock-analyze: {} corpus systems ({})",
        cases.len(),
        if opts.smoke { "smoke" } else { "full" }
    );

    println!("| system | txns | sat | oracle | dl(sat) | dl(oracle) | greedy | optimal | status |");
    println!("|---|---|---|---|---|---|---|---|---|");

    let mut failures = 0usize;
    for case in &cases {
        let mut errors: Vec<String> = Vec::new();
        let sys = &case.sys;

        let sat_safe = match check_safety(sys) {
            Ok(report) => {
                if let SatSafety::Unsafe(w) = &report.verdict {
                    if let Err(e) = replay_violation(sys, w) {
                        errors.push(format!("witness replay failed: {e}"));
                    }
                }
                Some(report.verdict.is_safe())
            }
            Err(e) => {
                errors.push(format!("check_safety refused: {e}"));
                None
            }
        };
        let sat_deadlock = match check_deadlock(sys) {
            Ok(report) => {
                if let Some(prefix) = &report.deadlock {
                    if let Err(e) = replay_deadlock(sys, prefix) {
                        errors.push(format!("deadlock replay failed: {e}"));
                    }
                }
                Some(report.deadlock.is_some())
            }
            Err(e) => {
                errors.push(format!("check_deadlock refused: {e}"));
                None
            }
        };

        // Oracle cross-examination (its hard cap is 8 transactions).
        let mut oracle_safe = String::from("-");
        let mut oracle_deadlock = String::from("-");
        if sys.len() <= 8 {
            let report = decide_exhaustive(sys, &OracleOptions::default());
            match report.outcome {
                OracleOutcome::Safe => {
                    oracle_safe = "safe".into();
                    if sat_safe == Some(false) {
                        errors.push("oracle says safe, SAT says unsafe".into());
                    }
                    // Only a full exploration decides deadlock *absence*.
                    oracle_deadlock = if report.deadlock_reachable {
                        "yes".into()
                    } else {
                        "no".into()
                    };
                    if sat_deadlock.is_some() && sat_deadlock != Some(report.deadlock_reachable) {
                        errors.push("deadlock verdict disagrees with oracle".into());
                    }
                }
                OracleOutcome::Unsafe(_) => {
                    oracle_safe = "unsafe".into();
                    if sat_safe == Some(true) {
                        errors.push("oracle says unsafe, SAT says safe".into());
                    }
                    if report.deadlock_reachable {
                        oracle_deadlock = "yes".into();
                    }
                }
                OracleOutcome::Aborted => oracle_safe = "aborted".into(),
            }
        }

        if let (Some(expected), Some(got)) = (case.expected_safe, sat_safe) {
            if expected != got {
                errors.push(format!(
                    "pinned expectation safe={expected}, SAT says {got}"
                ));
            }
        }

        let opt = synthesize_optimal(sys);
        if opt.optimal_count < opt.greedy_count {
            errors.push("optimal certified fewer than greedy".into());
        }
        if case.expect_gap && opt.optimal_count <= opt.greedy_count {
            errors.push("expected a strict greedy-vs-optimal gap".into());
        }
        if let Err(e) = opt.plan.verify(sys) {
            errors.push(format!("optimal plan fails verification: {e:?}"));
        }

        let status = if errors.is_empty() {
            "ok".to_string()
        } else {
            failures += 1;
            format!("FAIL: {}", errors.join("; "))
        };
        let show = |v: Option<bool>, yes: &str, no: &str| match v {
            Some(true) => yes.to_string(),
            Some(false) => no.to_string(),
            None => "error".to_string(),
        };
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            case.name,
            sys.len(),
            show(sat_safe, "safe", "unsafe"),
            oracle_safe,
            show(sat_deadlock, "yes", "no"),
            oracle_deadlock,
            opt.greedy_count,
            opt.optimal_count,
            status
        );
    }

    if failures > 0 {
        eprintln!("kplock-analyze: {failures} system(s) FAILED");
        std::process::exit(1);
    }
    eprintln!("kplock-analyze: all {} systems consistent", cases.len());
}
