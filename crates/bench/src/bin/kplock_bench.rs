//! `kplock-bench`: the lock-table performance driver behind
//! `BENCH_*.json` (see README "Benchmark trajectory").
//!
//! Sweeps table implementation × threads × shards × resolution arm ×
//! fault plan × workload across three suites:
//!
//! * `hot_loop` — raw [`kplock_dlm::ShardedTable`] acquire/release
//!   cycles on real threads (disjoint entities per thread, so on a
//!   single core nothing blocks cross-thread and the numbers measure
//!   the table data structure, not the scheduler);
//! * `sim` — full deterministic simulator runs under probe detection,
//!   wound-wait prevention, certificate-driven avoidance, and a lossy
//!   fault plan;
//! * `threaded` — the OS-thread runner under timeout, prevention and
//!   avoidance.
//!
//! Each configuration yields one [`BenchRecord`] (throughput,
//! p50/p99/p999 latency, restarts, probe messages). `--out PATH` writes
//! the JSON trajectory; `--check BASELINE` joins current records against
//! a committed baseline by `id`, normalizes out machine speed with the
//! median ratio, and fails on any record slower than
//! `median × (1 − tolerance)` — the CI perf gate.
//!
//! ```text
//! kplock-bench [--smoke|--full] [--out PATH] [--check BASELINE] [--tolerance F]
//! ```

use kplock_bench::record::{self, BenchRecord};
use kplock_bench::two_site_pair;
use kplock_dlm::{Bias, FifoTable, LockTable, QueueTable, ShardedTable, TableSpec};
use kplock_model::{Database, EntityId, LockMode, TxnBuilder, TxnSystem};
use kplock_sim::{
    run, run_threaded, AvoidPlan, DeadlockDetection, DeadlockResolution, FaultPlan, LatencyModel,
    PreventionScheme, SimConfig, ThreadedConfig, ThreadedResolution,
};
use std::sync::Barrier;
use std::time::{Duration, Instant};

struct Opts {
    smoke: bool,
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: kplock-bench [--smoke|--full] [--out PATH] [--check BASELINE] [--tolerance F]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
        check: None,
        tolerance: 0.15,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--full" => opts.smoke = false,
            "--out" => opts.out = Some(args.next().unwrap_or_else(|| usage())),
            "--check" => opts.check = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.tolerance = v.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    opts
}

/// Work scales per mode: smoke keeps CI under control, full is the
/// recorded trajectory.
struct Scale {
    hot_rounds: u64,
    /// Hot-loop repetitions per configuration; the *fastest* repetition
    /// is recorded. On a timeshared box interference is strictly
    /// additive, so best-of-N approximates the clean measurement and
    /// keeps the `--check` gate from flaking on scheduler noise.
    hot_reps: u32,
    sim_reps: u64,
    thr_reps: u64,
}

impl Scale {
    fn for_mode(smoke: bool) -> Scale {
        if smoke {
            // Same hot-loop measurement length as full — a shorter
            // measured phase has a different cache-warmth profile and
            // is not comparable per record — only fewer repetitions
            // and sim/threaded reps.
            Scale {
                hot_rounds: 30_000,
                hot_reps: 3,
                sim_reps: 3,
                thr_reps: 2,
            }
        } else {
            Scale {
                hot_rounds: 30_000,
                hot_reps: 5,
                sim_reps: 12,
                thr_reps: 6,
            }
        }
    }
}

fn main() {
    let opts = parse_opts();
    let scale = Scale::for_mode(opts.smoke);
    let mode = if opts.smoke { "smoke" } else { "full" };
    eprintln!("kplock-bench: mode={mode}");

    let mut records = Vec::new();
    hot_loop_suite(&mut records, &scale);
    sim_suite(&mut records, &scale);
    threaded_suite(&mut records, &scale);
    hierarchy_suite(&mut records);
    delegation_suite(&mut records);

    println!(
        "{:<38} {:>12} {:>9} {:>9} {:>9}",
        "id", "ops/s", "p50us", "p99us", "p999us"
    );
    for r in &records {
        println!(
            "{:<38} {:>12.0} {:>9.2} {:>9.2} {:>9.2}",
            r.id, r.throughput_ops_per_s, r.p50_us, r.p99_us, r.p999_us
        );
    }
    print_contended_ratio(&records);

    if let Some(path) = &opts.out {
        std::fs::write(path, record::to_json(mode, &records)).unwrap_or_else(|e| {
            eprintln!("kplock-bench: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("kplock-bench: wrote {} records to {path}", records.len());
    }

    if let Some(baseline) = &opts.check {
        match check_against(baseline, &records, opts.tolerance) {
            Ok(summary) => println!("{summary}"),
            Err(err) => {
                eprintln!("kplock-bench: REGRESSION GATE FAILED\n{err}");
                std::process::exit(1);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Suite: hot_loop — raw sharded-table cycles on real threads.
// ---------------------------------------------------------------------

const X: LockMode = LockMode::Exclusive;
/// Entities each hot-loop thread cycles over.
const HOT_ENTS: u32 = 4;

fn hot_loop_suite(records: &mut Vec<BenchRecord>, scale: &Scale) {
    let specs = [TableSpec::Fifo, TableSpec::queue()];
    for spec in specs {
        for threads in [1usize, 8] {
            for shards in [4usize, 16] {
                for contended in [true, false] {
                    records.push(hot_record(spec, threads, shards, contended, scale));
                }
            }
        }
    }
    // The promotion-bias knobs, recorded at the contended sweet spot so
    // their cost relative to neutral queue promotion stays visible.
    for spec in [
        TableSpec::Queue {
            bias: Bias::ReaderBatch,
            cohorts: 0,
        },
        TableSpec::Queue {
            bias: Bias::WriterPreference,
            cohorts: 0,
        },
        TableSpec::Queue {
            bias: Bias::Neutral,
            cohorts: 4,
        },
    ] {
        records.push(hot_record(spec, 8, 16, true, scale));
    }
}

fn hot_record(
    spec: TableSpec,
    threads: usize,
    shards: usize,
    contended: bool,
    scale: &Scale,
) -> BenchRecord {
    let rounds = scale.hot_rounds;
    // Best-of-N (see [`Scale::hot_reps`]): keep the fastest repetition.
    let mut best: Option<(u64, Duration, Vec<u64>)> = None;
    for _ in 0..scale.hot_reps {
        let sample = match spec {
            TableSpec::Fifo => {
                hot_loop::<FifoTable<u32>>(threads, shards, contended, rounds, FifoTable::new)
            }
            TableSpec::Queue { bias, cohorts } => {
                hot_loop(threads, shards, contended, rounds, move || {
                    QueueTable::new()
                        .with_bias(bias)
                        .with_topology(cohorts, |o: u32, n| o % n)
                })
            }
        };
        if best.as_ref().is_none_or(|(_, e, _)| sample.1 < *e) {
            best = Some(sample);
        }
    }
    let (ops, elapsed, lat_ns) = best.expect("hot_reps >= 1");
    let workload = if contended {
        "contended"
    } else {
        "uncontended"
    };
    let (p50, p99, p999) = percentiles_us(lat_ns);
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    BenchRecord {
        id: format!("hot/{workload}/{}/t{threads}/s{shards}", spec.label()),
        suite: "hot_loop".to_string(),
        workload: workload.to_string(),
        table: spec.label().to_string(),
        threads: threads as u32,
        shards: shards as u32,
        resolution: "none".to_string(),
        fault_plan: "none".to_string(),
        ops,
        elapsed_ms,
        throughput_ops_per_s: ops as f64 / elapsed.as_secs_f64(),
        p50_us: p50,
        p99_us: p99,
        p999_us: p999,
        restarts: 0,
        probe_messages: 0,
    }
}

/// Drives `threads` OS threads over one sharded table; every thread owns
/// a disjoint entity set, so no acquire ever waits on another thread —
/// the measurement is pure table-operation cost. The contended pattern
/// still exercises the queue machinery: a second owner queues behind the
/// first and is granted by its release.
///
/// Returns `(ops, measured_elapsed, latency_samples_ns)`; a latency
/// sample is one full lock/unlock cycle on one entity.
fn hot_loop<T: LockTable<u32> + Send>(
    threads: usize,
    shards: usize,
    contended: bool,
    rounds: u64,
    factory: impl FnMut() -> T,
) -> (u64, Duration, Vec<u64>) {
    let table: ShardedTable<u32, T> = ShardedTable::with_tables(shards, factory);
    let warmup = (rounds / 10).max(1);
    let barrier = Barrier::new(threads + 1);
    let ops_per_ent: u64 = if contended { 4 } else { 2 };

    let (lat, elapsed) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..threads {
            let table = &table;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let a = tid as u32 * 2;
                let b = a + 1;
                let ents: Vec<EntityId> = (0..HOT_ENTS)
                    .map(|k| EntityId(tid as u32 * HOT_ENTS + k))
                    .collect();
                let mut buf: Vec<(u32, LockMode)> = Vec::new();
                let cycle = |e: EntityId, buf: &mut Vec<(u32, LockMode)>| {
                    table.acquire(e, a, X).expect("fresh acquire");
                    if contended {
                        table.acquire(e, b, X).expect("queued acquire");
                        buf.clear();
                        table.release_into(e, a, buf).expect("holder release");
                        debug_assert_eq!(buf.as_slice(), &[(b, X)]);
                        buf.clear();
                        table.release_into(e, b, buf).expect("granted release");
                    } else {
                        buf.clear();
                        table.release_into(e, a, buf).expect("holder release");
                    }
                };
                for _ in 0..warmup {
                    for &e in &ents {
                        cycle(e, &mut buf);
                    }
                }
                barrier.wait();
                // Time the measured phase *inside* the worker: on a
                // single-core box the whole phase can run before the
                // spawning thread is rescheduled, so an outside
                // timestamp would undershoot wildly.
                let t0 = Instant::now();
                let mut lats = Vec::with_capacity((rounds / 8 + 1) as usize);
                for r in 0..rounds {
                    if r % 8 == 0 {
                        let s0 = Instant::now();
                        for &e in &ents {
                            cycle(e, &mut buf);
                        }
                        lats.push(s0.elapsed().as_nanos() as u64 / u64::from(HOT_ENTS));
                    } else {
                        for &e in &ents {
                            cycle(e, &mut buf);
                        }
                    }
                }
                (t0.elapsed(), lats)
            }));
        }
        barrier.wait();
        let mut lat: Vec<u64> = Vec::new();
        let mut elapsed = Duration::ZERO;
        for h in handles {
            let (span, lats) = h.join().expect("hot-loop thread panicked");
            elapsed = elapsed.max(span);
            lat.extend(lats);
        }
        (lat, elapsed)
    });

    let ops = threads as u64 * rounds * u64::from(HOT_ENTS) * ops_per_ent;
    (ops, elapsed, lat)
}

// ---------------------------------------------------------------------
// Suite: sim — deterministic engine runs.
// ---------------------------------------------------------------------

fn sim_suite(records: &mut Vec<BenchRecord>, scale: &Scale) {
    let arms = [
        (
            "probe",
            DeadlockResolution::Detect(DeadlockDetection::Probe),
        ),
        (
            "wound_wait",
            DeadlockResolution::Prevent(PreventionScheme::WoundWait),
        ),
        ("avoid", DeadlockResolution::Avoid),
    ];
    for spec in [TableSpec::Fifo, TableSpec::queue()] {
        for (rlabel, resolution) in arms {
            for (wlabel, steps) in [("pair8", 8usize), ("pair16", 16)] {
                records.push(sim_record(
                    spec,
                    rlabel,
                    resolution,
                    wlabel,
                    steps,
                    FaultPlan::none(),
                    "none",
                    scale,
                ));
            }
        }
        // The fault axis: seeded loss/duplication/reordering under the
        // default periodic detector.
        records.push(sim_record(
            spec,
            "periodic",
            DeadlockResolution::default(),
            "pair8",
            8,
            FaultPlan::lossy(7, 0.05, 0.02, 0.10),
            "lossy",
            scale,
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn sim_record(
    spec: TableSpec,
    rlabel: &str,
    resolution: DeadlockResolution,
    wlabel: &str,
    steps: usize,
    faults: FaultPlan,
    flabel: &str,
    scale: &Scale,
) -> BenchRecord {
    let mut ops = 0u64;
    let mut restarts = 0u64;
    let mut probes = 0u64;
    let mut lat_ns = Vec::new();
    let t0 = Instant::now();
    for seed in 0..scale.sim_reps {
        let sys = two_site_pair(seed + 1, steps);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            resolution,
            table: spec,
            faults: faults.clone(),
            seed: seed + 1,
            avoid: (resolution == DeadlockResolution::Avoid).then(|| AvoidPlan::synthesize(&sys)),
            ..Default::default()
        };
        let r0 = Instant::now();
        let report = run(&sys, &cfg).expect("valid config");
        lat_ns.push(r0.elapsed().as_nanos() as u64);
        ops += report.metrics.committed as u64;
        restarts += report.metrics.aborts as u64;
        probes += report.metrics.probe_messages;
    }
    let elapsed = t0.elapsed();
    let (p50, p99, p999) = percentiles_us(lat_ns);
    BenchRecord {
        id: format!("sim/{wlabel}/{}/{rlabel}/{flabel}", spec.label()),
        suite: "sim".to_string(),
        workload: wlabel.to_string(),
        table: spec.label().to_string(),
        threads: 1,
        shards: 1,
        resolution: rlabel.to_string(),
        fault_plan: flabel.to_string(),
        ops,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_ops_per_s: ops as f64 / elapsed.as_secs_f64(),
        p50_us: p50,
        p99_us: p99,
        p999_us: p999,
        restarts,
        probe_messages: probes,
    }
}

// ---------------------------------------------------------------------
// Suite: threaded — the OS-thread runner.
// ---------------------------------------------------------------------

fn threaded_sys() -> TxnSystem {
    let db = Database::from_spec(&[("x", 0), ("y", 1), ("z", 2)]);
    let scripts = [
        "Lx Ly x y Ux Uy",
        "Ly Lz y z Uy Uz",
        "Lz Lx z x Uz Ux",
        "Lx Lz x z Ux Uz",
    ];
    let txns = scripts
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
            b.script(s).unwrap();
            b.build().unwrap()
        })
        .collect();
    TxnSystem::new(db, txns)
}

fn threaded_suite(records: &mut Vec<BenchRecord>, scale: &Scale) {
    let sys = threaded_sys();
    let arms = [
        ("timeout", ThreadedResolution::TimeoutAbort),
        (
            "wound_wait",
            ThreadedResolution::Prevent(PreventionScheme::WoundWait),
        ),
        ("avoid", ThreadedResolution::Avoid),
    ];
    for spec in [TableSpec::Fifo, TableSpec::queue()] {
        for shards in [4usize, 16] {
            for (rlabel, resolution) in arms {
                records.push(threaded_record(
                    &sys, spec, shards, rlabel, resolution, scale,
                ));
            }
        }
    }
}

fn threaded_record(
    sys: &TxnSystem,
    spec: TableSpec,
    shards: usize,
    rlabel: &str,
    resolution: ThreadedResolution,
    scale: &Scale,
) -> BenchRecord {
    let cfg = ThreadedConfig {
        shards,
        resolution,
        table: spec,
        lock_timeout: Duration::from_millis(5),
        max_backoff: Duration::from_millis(1),
        max_attempts: 1000,
        avoid: (resolution == ThreadedResolution::Avoid).then(|| AvoidPlan::synthesize(sys)),
        delegation: false,
    };
    let mut ops = 0u64;
    let mut restarts = 0u64;
    let mut lat_ns = Vec::new();
    let t0 = Instant::now();
    for _ in 0..scale.thr_reps {
        let r0 = Instant::now();
        let report = run_threaded(sys, &cfg).expect("valid config");
        lat_ns.push(r0.elapsed().as_nanos() as u64);
        ops += report.audit.schedule.len() as u64;
        restarts += report.aborts as u64;
    }
    let elapsed = t0.elapsed();
    let (p50, p99, p999) = percentiles_us(lat_ns);
    BenchRecord {
        id: format!("thr/ring4/{}/{rlabel}/s{shards}", spec.label()),
        suite: "threaded".to_string(),
        workload: "ring4".to_string(),
        table: spec.label().to_string(),
        threads: sys.len() as u32,
        shards: shards as u32,
        resolution: rlabel.to_string(),
        fault_plan: "none".to_string(),
        ops,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_ops_per_s: ops as f64 / elapsed.as_secs_f64(),
        p50_us: p50,
        p99_us: p99,
        p999_us: p999,
        restarts,
        probe_messages: 0,
    }
}

// ---------------------------------------------------------------------
// Suite: hierarchy — multi-granularity locking at 10⁵ records (D6).
// ---------------------------------------------------------------------

/// Scan traffic over a 100-file × 1000-record catalog, flat vs
/// hierarchical, with and without a lossy fault plan. One run per
/// configuration in every mode: the headline number (`ops` = total lock
/// requests serviced by the sites) is fully deterministic, so the
/// `--check` gate pins it *exactly* and additionally enforces the ≥5×
/// flat-vs-hierarchical ratio from the D6 acceptance bar. The invariant
/// audit (full-matrix co-holder exclusion) is armed on every run.
fn hierarchy_suite(records: &mut Vec<BenchRecord>) {
    use kplock_model::hierarchy::Granularity;
    use kplock_sim::run_with_arrivals;
    use kplock_workload::{hierarchy_system, AccessProfile, HierarchyParams};
    let p = HierarchyParams {
        profile: AccessProfile::Scan,
        files: 100,
        records_per_file: 1000,
        sites: 4,
        transactions: 10,
        zipf_theta: 0.6,
        arrival_gap: 50,
        seed: 3,
    };
    let arms = [
        ("flat", Granularity::Flat),
        (
            "hier16",
            Granularity::Hierarchical {
                escalation_threshold: 16,
            },
        ),
    ];
    for (glabel, g) in arms {
        let sc = hierarchy_system(&p, g);
        for (faults, flabel) in [
            (FaultPlan::none(), "none"),
            (FaultPlan::lossy(7, 0.05, 0.02, 0.10), "lossy"),
        ] {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                seed: 17,
                faults,
                invariant_audit: true,
                max_time: 20_000_000,
                ..Default::default()
            };
            let t0 = Instant::now();
            let report = run_with_arrivals(&sc.system, &cfg, &sc.arrivals).expect("valid config");
            let elapsed = t0.elapsed();
            assert!(report.finished(), "hier/{glabel}/{flabel} did not finish");
            report
                .audit
                .legal
                .as_ref()
                .unwrap_or_else(|e| panic!("hier/{glabel}/{flabel}: illegal schedule: {e}"));
            records.push(BenchRecord {
                id: format!("hier/scan1e5/{glabel}/{flabel}"),
                suite: "hierarchy".to_string(),
                workload: "scan1e5".to_string(),
                table: glabel.to_string(),
                threads: 1,
                shards: p.sites as u32,
                resolution: "periodic".to_string(),
                fault_plan: flabel.to_string(),
                ops: report.metrics.lock_requests,
                elapsed_ms: elapsed.as_secs_f64() * 1e3,
                throughput_ops_per_s: report.metrics.lock_requests as f64 / elapsed.as_secs_f64(),
                p50_us: 0.0,
                p99_us: 0.0,
                p999_us: 0.0,
                restarts: report.metrics.aborts as u64,
                probe_messages: report.metrics.probe_messages,
            });
        }
    }
}

/// The hierarchy side of the gate: lock-request counts are deterministic,
/// so any drift against the baseline is a real behavior change (workload
/// generation, escalation policy, or admission), and the flat arm must
/// need ≥5× the lock requests of the hierarchical arm.
fn check_hierarchy(baseline: &[BenchRecord], current: &[BenchRecord]) -> Result<String, String> {
    let mut errors = Vec::new();
    let mut pinned = 0;
    for cur in current.iter().filter(|r| r.suite == "hierarchy") {
        if let Some(base) = baseline.iter().find(|b| b.id == cur.id) {
            pinned += 1;
            if base.ops != cur.ops {
                errors.push(format!(
                    "  {}: lock-request count drifted from the baseline ({} -> {})",
                    cur.id, base.ops, cur.ops
                ));
            }
        }
    }
    let find = |table: &str| {
        current
            .iter()
            .find(|r| r.suite == "hierarchy" && r.table == table && r.fault_plan == "none")
            .map(|r| r.ops)
    };
    match (find("flat"), find("hier16")) {
        (Some(flat), Some(hier)) if flat < 5 * hier => errors.push(format!(
            "  hier/scan1e5: flat/hier lock-request ratio {:.1}x is below the 5x acceptance bar \
             (flat {flat}, hier {hier})",
            flat as f64 / hier as f64
        )),
        (Some(flat), Some(hier)) => {
            return if errors.is_empty() {
                Ok(format!(
                    "hierarchy gate OK: {pinned} pinned records, flat/hier ratio {:.1}x (≥5x)",
                    flat as f64 / hier as f64
                ))
            } else {
                Err(errors.join("\n"))
            }
        }
        _ => errors.push("  hier/scan1e5: flat or hier16 record missing from this run".to_string()),
    }
    if errors.is_empty() {
        Ok(format!("hierarchy gate OK: {pinned} pinned records"))
    } else {
        Err(errors.join("\n"))
    }
}

// ---------------------------------------------------------------------
// Suite: delegation — cached grants vs always-remote (D7).
// ---------------------------------------------------------------------

/// The D7 message-economy workloads: read-heavy skewed traffic (3 sites,
/// 24 entities/site, 10 sync-2PL transactions × 10 steps, 90% reads) as
/// a 95% hot-site mix and a θ=0.9 Zipfian mix, each run with delegation
/// off and on under both prevention arms. `ops` is acquire/release
/// traffic (`lock_traffic`) summed over 20 fixed sim seeds — fully
/// deterministic, so the `--check` gate pins the counts exactly and
/// enforces the ≥2× off/on reduction from the D7 acceptance bar on the
/// headline arms (hot-site under wait-die, Zipfian under wound-wait).
fn delegation_suite(records: &mut Vec<BenchRecord>) {
    use kplock_core::policy::LockStrategy;
    use kplock_sim::Delegation;
    use kplock_workload::{hot_site_sweep, zipf_sweep, WorkloadParams};
    let base = WorkloadParams {
        seed: 42,
        sites: 3,
        entities_per_site: 24,
        transactions: 10,
        steps_per_txn: 10,
        read_percent: 90,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    };
    let workloads = [
        ("hot95", hot_site_sweep(&base, &[95]).pop().expect("one")),
        ("zipf09", zipf_sweep(&base, &[0.9]).pop().expect("one")),
    ];
    let arms = [
        (
            "wound_wait",
            DeadlockResolution::Prevent(PreventionScheme::WoundWait),
        ),
        (
            "wait_die",
            DeadlockResolution::Prevent(PreventionScheme::WaitDie),
        ),
    ];
    for (wlabel, sc) in &workloads {
        for (rlabel, resolution) in arms {
            for (dlabel, delegation) in [("off", Delegation::Off), ("on", Delegation::On)] {
                let mut traffic = 0u64;
                let mut restarts = 0u64;
                let mut lat_ns = Vec::new();
                let t0 = Instant::now();
                for seed in 0..20u64 {
                    let cfg = SimConfig {
                        seed,
                        latency: LatencyModel::Fixed(5),
                        resolution,
                        delegation,
                        max_time: 2_000_000,
                        ..Default::default()
                    };
                    let r0 = Instant::now();
                    let report = run(&sc.system, &cfg).expect("valid config");
                    lat_ns.push(r0.elapsed().as_nanos() as u64);
                    traffic += report.metrics.lock_traffic;
                    restarts += report.metrics.aborts as u64;
                }
                let elapsed = t0.elapsed();
                let (p50, p99, p999) = percentiles_us(lat_ns);
                records.push(BenchRecord {
                    id: format!("deleg/{wlabel}/{rlabel}/{dlabel}"),
                    suite: "delegation".to_string(),
                    workload: (*wlabel).to_string(),
                    table: "default".to_string(),
                    threads: 1,
                    shards: 1,
                    resolution: rlabel.to_string(),
                    fault_plan: "none".to_string(),
                    ops: traffic,
                    elapsed_ms: elapsed.as_secs_f64() * 1e3,
                    throughput_ops_per_s: traffic as f64 / elapsed.as_secs_f64(),
                    p50_us: p50,
                    p99_us: p99,
                    p999_us: p999,
                    restarts,
                    probe_messages: 0,
                });
            }
        }
    }
}

/// The delegation side of the gate: acquire/release message counts are
/// deterministic, so any drift against the baseline is a real behavior
/// change (delegation protocol, workload generation, or admission), and
/// delegation must keep cutting lock traffic ≥2× on each headline
/// workload/arm pair.
fn check_delegation(baseline: &[BenchRecord], current: &[BenchRecord]) -> Result<String, String> {
    let mut errors = Vec::new();
    let mut pinned = 0;
    for cur in current.iter().filter(|r| r.suite == "delegation") {
        if let Some(base) = baseline.iter().find(|b| b.id == cur.id) {
            pinned += 1;
            if base.ops != cur.ops {
                errors.push(format!(
                    "  {}: lock-traffic count drifted from the baseline ({} -> {})",
                    cur.id, base.ops, cur.ops
                ));
            }
        }
    }
    let find = |id: &str| {
        current
            .iter()
            .find(|r| r.suite == "delegation" && r.id == id)
            .map(|r| r.ops)
    };
    let mut ratios = Vec::new();
    for (off_id, on_id) in [
        ("deleg/hot95/wait_die/off", "deleg/hot95/wait_die/on"),
        ("deleg/zipf09/wound_wait/off", "deleg/zipf09/wound_wait/on"),
    ] {
        match (find(off_id), find(on_id)) {
            (Some(off), Some(on)) if off < 2 * on => errors.push(format!(
                "  {on_id}: off/on lock-traffic ratio {:.2}x is below the 2x acceptance bar \
                 (off {off}, on {on})",
                off as f64 / on as f64
            )),
            (Some(off), Some(on)) => ratios.push(off as f64 / on as f64),
            _ => errors.push(format!("  {off_id}: record missing from this run")),
        }
    }
    if errors.is_empty() {
        let shown: Vec<String> = ratios.iter().map(|r| format!("{r:.2}x")).collect();
        Ok(format!(
            "delegation gate OK: {pinned} pinned records, headline ratios [{}] (≥2x)",
            shown.join(", ")
        ))
    } else {
        Err(errors.join("\n"))
    }
}

// ---------------------------------------------------------------------
// Shared measurement plumbing.
// ---------------------------------------------------------------------

/// p50/p99/p999 of nanosecond samples, in microseconds.
fn percentiles_us(mut lat_ns: Vec<u64>) -> (f64, f64, f64) {
    if lat_ns.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    lat_ns.sort_unstable();
    let pick = |p: f64| {
        let idx = ((lat_ns.len() - 1) as f64 * p).round() as usize;
        lat_ns[idx] as f64 / 1e3
    };
    (pick(0.50), pick(0.99), pick(0.999))
}

/// Prints the headline acceptance ratio: queue vs fifo on the contended
/// hot loop at the biggest swept configuration.
fn print_contended_ratio(records: &[BenchRecord]) {
    let find = |table: &str| {
        records
            .iter()
            .filter(|r| {
                r.suite == "hot_loop"
                    && r.workload == "contended"
                    && r.table == table
                    && r.threads == 8
                    && r.shards == 16
            })
            .map(|r| r.throughput_ops_per_s)
            .next()
    };
    if let (Some(fifo), Some(queue)) = (find("fifo"), find("queue")) {
        println!(
            "contended queue/fifo throughput ratio (t8/s16): {:.2}x",
            queue / fifo
        );
    }
}

/// The regression gate: joins `current` to the baseline by record id,
/// normalizes machine speed out with the median throughput ratio, and
/// fails when any record falls below `median × (1 − tolerance)`.
///
/// Only single-thread `hot_loop` records participate: the sim and
/// threaded suites are nondeterministic run-to-run (timeout races,
/// thread scheduling), and multi-thread hot-loop records on a
/// small/shared CI box measure the scheduler as much as the table. The
/// `t1` records are a pure data-structure measurement and stay stable;
/// a real table regression shows up there first.
fn check_against(
    baseline_path: &str,
    current: &[BenchRecord],
    tolerance: f64,
) -> Result<String, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = record::from_json(&text)?;
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for cur in current
        .iter()
        .filter(|r| r.suite == "hot_loop" && r.threads == 1)
    {
        let Some(base) = baseline.iter().find(|b| b.id == cur.id) else {
            continue;
        };
        if base.throughput_ops_per_s > 0.0 {
            ratios.push((
                cur.id.clone(),
                cur.throughput_ops_per_s / base.throughput_ops_per_s,
            ));
        }
    }
    if ratios.is_empty() {
        return Err("no overlapping records between run and baseline".to_string());
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let floor = median * (1.0 - tolerance);
    let failures: Vec<String> = ratios
        .iter()
        .filter(|&&(_, r)| r < floor)
        .map(|(id, r)| {
            format!("  {id}: {r:.3}x vs baseline (floor {floor:.3}x, median {median:.3}x)")
        })
        .collect();
    // The hierarchy and delegation records gate on *determinism* and
    // their acceptance ratios, not throughput — counts are
    // machine-independent, so no tolerance.
    let hierarchy = check_hierarchy(&baseline, current);
    let delegation = check_delegation(&baseline, current);
    let mut problems = Vec::new();
    if !failures.is_empty() {
        problems.push(format!(
            "{} of {} records regressed more than {:.0}% below the median ratio {median:.3}x:\n{}",
            failures.len(),
            ratios.len(),
            tolerance * 100.0,
            failures.join("\n")
        ));
    }
    if let Err(herr) = &hierarchy {
        problems.push(format!("hierarchy gate failed:\n{herr}"));
    }
    if let Err(derr) = &delegation {
        problems.push(format!("delegation gate failed:\n{derr}"));
    }
    if let (true, Ok(hsummary), Ok(dsummary)) = (problems.is_empty(), &hierarchy, &delegation) {
        Ok(format!(
            "perf gate OK: {} records, median ratio {median:.3}x, floor {floor:.3}x\n{hsummary}\n{dsummary}",
            ratios.len()
        ))
    } else {
        Err(problems.join("\n"))
    }
}
