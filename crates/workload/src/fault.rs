//! The fault-sweep scenario family: fault rates × resolution schemes.
//!
//! The paper's claim is that distribution makes locking harder because
//! sites act on partial, delayed knowledge; an unreliable network and
//! mortal sites are that claim at full strength. [`fault_sweep`] crosses
//! a deterministic deadlock-prone system (the [`crate::resolution_sweep`]
//! rotated-lock-order shape) with a ladder of [`FaultPlan`]s — clean,
//! loss-only, duplication-only, loss+dup+reorder, and a crash plan — and
//! a chosen set of [`DeadlockResolution`] arms, producing one ready-to-run
//! scenario per (plan, arm) pair. Experiments table D3 and the `fault`
//! criterion bench both iterate exactly this family, so the simulated
//! numbers and the wall-clock smoke run can never drift apart.

use crate::scenarios::resolution_sweep;
use kplock_model::TxnSystem;
use kplock_sim::{
    AvoidPlan, DeadlockDetection, DeadlockResolution, FaultPlan, PreventionScheme, SimConfig,
    SiteCrash,
};

/// One point of the fault sweep: a system, a fault plan, and a resolution
/// arm, ready to run.
#[derive(Clone, Debug)]
pub struct FaultScenario {
    /// Human-readable tag, e.g. `loss=0.10/probe` or `crash/wound-wait`.
    pub name: String,
    /// The fault plan's tag alone (`clean`, `loss=0.10`, `dup=0.20`,
    /// `mixed=0.10`, `crash`).
    pub plan_name: String,
    /// The resolution arm's tag alone (`probe`, `wound-wait`, …).
    pub resolution_name: String,
    /// The generated, locked transaction system.
    pub system: TxnSystem,
    /// The fault plan to run under.
    pub faults: FaultPlan,
    /// The resolution arm to run under.
    pub resolution: DeadlockResolution,
}

impl FaultScenario {
    /// A [`SimConfig`] running this scenario at the given fixed latency
    /// (seed and everything else left at the defaults for the caller to
    /// override via struct update).
    pub fn config(&self, latency: u64) -> SimConfig {
        SimConfig {
            latency: kplock_sim::LatencyModel::Fixed(latency),
            resolution: self.resolution,
            // The avoidance arm needs its certificate; synthesize it from
            // the scenario's own system so the config always validates.
            avoid: (self.resolution == DeadlockResolution::Avoid)
                .then(|| AvoidPlan::synthesize(&self.system)),
            faults: self.faults.clone(),
            ..Default::default()
        }
    }
}

/// The canonical fault-plan ladder swept by experiments table D3 and the
/// `fault` bench: clean, loss-only at each of `loss_rates`,
/// duplication-only at `dup_rate`, a mixed plan (loss + dup + reorder at
/// the first loss rate), and a two-outage crash plan. Retransmission is
/// on for every faulty plan (lossy channels strand work without it) and
/// crash leases are generous enough that short outages keep their
/// holders.
pub fn fault_plan_ladder(seed: u64, loss_rates: &[f64], dup_rate: f64) -> Vec<(String, FaultPlan)> {
    let mut plans = vec![("clean".to_string(), FaultPlan::none())];
    for &loss in loss_rates {
        plans.push((
            format!("loss={loss:.2}"),
            FaultPlan::lossy(seed, loss, 0.0, 0.0),
        ));
    }
    plans.push((
        format!("dup={dup_rate:.2}"),
        FaultPlan {
            duplication: dup_rate,
            reorder_window: 8,
            ..FaultPlan::none()
        },
    ));
    if let Some(&loss) = loss_rates.first() {
        plans.push((
            format!("mixed={loss:.2}"),
            FaultPlan::lossy(seed, loss, dup_rate, dup_rate),
        ));
    }
    plans.push((
        "crash".to_string(),
        FaultPlan {
            retransmit_after: 120,
            lease_ttl: 200,
            crashes: vec![
                SiteCrash {
                    site: 0,
                    at: 80,
                    down_for: 60,
                },
                SiteCrash {
                    site: 1,
                    at: 400,
                    down_for: 350,
                },
            ],
            ..FaultPlan::none()
        },
    ));
    plans
}

/// The resolution arms the fault axis is most interesting against: the
/// fully distributed detector (probes must survive the same faulty
/// channels as the data) and the restart-paying preventer.
pub const FAULT_ARMS: [(DeadlockResolution, &str); 2] = [
    (
        DeadlockResolution::Detect(DeadlockDetection::Probe),
        "probe",
    ),
    (
        DeadlockResolution::Prevent(PreventionScheme::WoundWait),
        "wound-wait",
    ),
];

/// [`FAULT_ARMS`] plus the avoidance arm: the rotated-lock-order system
/// is mostly uncertifiable (every pair conflicts in both orders), so this
/// arm exercises the certificate *boundary* under faults — certified
/// transactions must stay deadlock-free while the fallback majority is
/// wounded across lossy channels. Used by the fault bench and the
/// conformance suite; [`FAULT_ARMS`] keeps its original pair so existing
/// sweep shapes are unchanged.
pub const FAULT_ARMS_WITH_AVOID: [(DeadlockResolution, &str); 3] = [
    (
        DeadlockResolution::Detect(DeadlockDetection::Probe),
        "probe",
    ),
    (
        DeadlockResolution::Prevent(PreventionScheme::WoundWait),
        "wound-wait",
    ),
    (DeadlockResolution::Avoid, "avoid"),
];

/// Crosses the [`fault_plan_ladder`] with resolution arms on one
/// deterministic rotated-lock-order system (`entities` entities over
/// `sites` sites, `txns` synchronized-2PL transactions — deadlock-prone
/// by construction, serializable on commit). Pass [`FAULT_ARMS`] for the
/// canonical pair, or any slice of `(resolution, tag)` arms. The crash
/// rung's site indices are remapped into `0..sites`, so the sweep is
/// runnable at any site count (including a single site).
///
/// Deterministic: the system is RNG-free and every plan is seeded.
pub fn fault_sweep(
    entities: usize,
    txns: usize,
    sites: usize,
    loss_rates: &[f64],
    arms: &[(DeadlockResolution, &str)],
) -> Vec<FaultScenario> {
    let base = resolution_sweep(entities, txns, &[sites])
        .pop()
        .expect("one site count, one scenario");
    let mut out = Vec::new();
    for (plan_name, mut faults) in fault_plan_ladder(97, loss_rates, 0.20) {
        for c in &mut faults.crashes {
            c.site %= sites;
        }
        for &(resolution, arm) in arms {
            out.push(FaultScenario {
                name: format!("{plan_name}/{arm}"),
                plan_name: plan_name.clone(),
                resolution_name: arm.to_string(),
                system: base.system.clone(),
                faults: faults.clone(),
                resolution,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::Level;
    use kplock_sim::{run, RunOutcome};

    #[test]
    fn ladder_shape_and_determinism() {
        let plans = fault_plan_ladder(7, &[0.1, 0.2], 0.25);
        let names: Vec<&str> = plans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "clean",
                "loss=0.10",
                "loss=0.20",
                "dup=0.25",
                "mixed=0.10",
                "crash"
            ]
        );
        assert!(!plans[0].1.any(), "the clean rung injects nothing");
        for (name, p) in &plans[1..] {
            assert!(p.any(), "{name} must inject something");
            p.validate().unwrap();
        }
        assert_eq!(plans, fault_plan_ladder(7, &[0.1, 0.2], 0.25));
    }

    #[test]
    fn single_site_sweep_remaps_crashes_and_runs() {
        // The ladder's crash rung names site 1; at one site it must fold
        // onto site 0 and still validate (the ladder's outages do not
        // overlap in time) and run.
        for sc in fault_sweep(4, 3, 1, &[0.1], &FAULT_ARMS) {
            let cfg = SimConfig {
                max_time: 400_000,
                ..sc.config(5)
            };
            cfg.validate().unwrap();
            assert!(sc.faults.crashes.iter().all(|c| c.site == 0));
            let r = run(&sc.system, &cfg).unwrap();
            assert_ne!(r.outcome, RunOutcome::Stalled, "{}", sc.name);
        }
    }

    #[test]
    fn sweep_crosses_plans_with_arms() {
        let sweep = fault_sweep(4, 3, 2, &[0.1], &FAULT_ARMS);
        // 4 plans (clean, loss, dup, mixed) + crash = 5, × 2 arms.
        assert_eq!(sweep.len(), 10);
        for sc in &sweep {
            sc.system.validate(Level::Strict).unwrap();
            assert_eq!(sc.system.db().site_count(), 2);
            assert_eq!(sc.name, format!("{}/{}", sc.plan_name, sc.resolution_name));
            let cfg = sc.config(5);
            cfg.validate().unwrap();
            assert_eq!(cfg.resolution, sc.resolution);
        }
    }

    #[test]
    fn avoid_arm_sweeps_with_a_synthesized_certificate() {
        let sweep = fault_sweep(4, 3, 2, &[0.1], &FAULT_ARMS_WITH_AVOID);
        // 5 plans × 3 arms.
        assert_eq!(sweep.len(), 15);
        let avoid: Vec<_> = sweep
            .iter()
            .filter(|sc| sc.resolution == DeadlockResolution::Avoid)
            .collect();
        assert_eq!(avoid.len(), 5);
        for sc in avoid {
            // config() must synthesize the plan, or Avoid would be
            // rejected by validation before it could run.
            let cfg = SimConfig {
                max_time: 400_000,
                ..sc.config(5)
            };
            cfg.validate().unwrap();
            let plan = cfg.avoid.as_ref().unwrap();
            assert_eq!(plan.txn_count(), sc.system.len());
            // Rotated lock orders conflict pairwise in both directions:
            // only the first transaction admitted can be certified.
            assert_eq!(plan.certified_count(), 1, "{}", sc.name);
            let r = run(&sc.system, &cfg).unwrap();
            assert_ne!(r.outcome, RunOutcome::Stalled, "{}", sc.name);
            assert_eq!(r.metrics.deadlocks_resolved, 0, "{}", sc.name);
        }
    }

    #[test]
    fn every_scenario_runs_to_a_sane_outcome() {
        // Small instance of the whole family under both arms: faulty runs
        // must never stall silently (retransmission keeps the queue
        // alive), clean and crash rungs must complete, and completed runs
        // must audit serializable.
        for sc in fault_sweep(4, 3, 2, &[0.15], &FAULT_ARMS) {
            let cfg = SimConfig {
                invariant_audit: true,
                max_time: 400_000,
                ..sc.config(5)
            };
            let r = run(&sc.system, &cfg).unwrap();
            assert_ne!(r.outcome, RunOutcome::Stalled, "{}", sc.name);
            if r.outcome == RunOutcome::Completed {
                assert_eq!(r.metrics.committed, sc.system.len(), "{}", sc.name);
                assert!(r.audit.serializable, "{}", sc.name);
            }
            if sc.plan_name == "clean" || sc.plan_name == "crash" {
                assert_eq!(r.outcome, RunOutcome::Completed, "{}", sc.name);
            }
            if sc.plan_name == "crash" {
                // At least the first outage lands mid-run; a fast arm can
                // commit everything before the second one fires.
                assert!(r.metrics.recoveries >= 1, "{}", sc.name);
            }
        }
    }
}
