//! Workloads: random distributed transaction systems, the paper's figure
//! instances, and named Theorem-3 reduction inputs.
//!
//! # Example
//!
//! ```
//! use kplock_core::policy::LockStrategy;
//! use kplock_model::{Level, LockMode};
//! use kplock_workload::{random_system, WorkloadParams};
//!
//! // A seeded mixed read/write workload: 3 sites, 4 transactions, 60%
//! // reads, locked with synchronized 2PL. Same seed, same system.
//! let sys = random_system(&WorkloadParams {
//!     seed: 42,
//!     sites: 3,
//!     transactions: 4,
//!     read_percent: 60,
//!     strategy: LockStrategy::TwoPhaseSync,
//!     ..Default::default()
//! });
//! sys.validate(Level::Strict).unwrap();
//! // Read-only entities got shared locks from the lock inserter.
//! let shared_locks = sys
//!     .txns()
//!     .iter()
//!     .flat_map(|t| t.steps())
//!     .filter(|s| s.kind == kplock_model::ActionKind::Lock && s.mode == LockMode::Shared)
//!     .count();
//! assert!(shared_locks > 0);
//! ```

pub mod avoidance;
pub mod fault;
pub mod figures;
pub mod hierarchy;
pub mod reduction_instances;
pub mod scenarios;
pub mod suite;
pub mod txn_gen;
pub mod zipf;

pub use avoidance::{avoid_mix_sweep, certified_mix, opposed_mix, AvoidScenario};
pub use fault::{fault_plan_ladder, fault_sweep, FaultScenario, FAULT_ARMS, FAULT_ARMS_WITH_AVOID};
pub use figures::{fig1, fig2, fig3, fig5};
pub use hierarchy::{
    hierarchy_sweep, hierarchy_system, two_level_catalog, AccessProfile, HierarchyParams,
    HierarchyScenario,
};
pub use reduction_instances::{fig8_formula, fig8_reduction, random_instance, unsat_restricted};
pub use scenarios::{hot_site_sweep, resolution_sweep, site_count_sweep, zipf_sweep, Scenario};
pub use suite::{figure_corpus, regression_corpus, NamedSystem};
pub use txn_gen::{make_database, random_pair, random_system, random_unlocked_txn, WorkloadParams};
pub use zipf::Zipf;
