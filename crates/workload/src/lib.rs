//! Workloads: random distributed transaction systems, the paper's figure
//! instances, and named Theorem-3 reduction inputs.

pub mod figures;
pub mod reduction_instances;
pub mod suite;
pub mod txn_gen;

pub use figures::{fig1, fig2, fig3, fig5};
pub use reduction_instances::{fig8_formula, fig8_reduction, random_instance, unsat_restricted};
pub use suite::{figure_corpus, regression_corpus, NamedSystem};
pub use txn_gen::{make_database, random_pair, random_system, random_unlocked_txn, WorkloadParams};
