//! The avoidance scenario family: certified-fraction sweeps.
//!
//! The avoidance arm ([`DeadlockResolution::Avoid`]) is only interesting
//! at its *boundary*: a fully certified set exhibits the Theorem-level
//! guarantee (no deadlock machinery runs at all), an empty certificate
//! must degenerate to plain wound-wait, and everything in between splits
//! the declared set into controller-governed and fallback-metered halves.
//! [`certified_mix`] builds systems whose certifiable prefix is known by
//! construction, and [`avoid_mix_sweep`] turns a list of certified counts
//! into ready-to-run [`AvoidScenario`]s whose plans hit each count
//! *exactly* (via [`AvoidPlan::synthesize_restricted`], so a fallback
//! transaction that happens to be certifiable alone is still excluded).
//! Experiments table D4 and the `avoidance` criterion bench iterate this
//! family, so the reported numbers and the smoke run cannot drift apart.

use kplock_model::{Database, TxnBuilder, TxnId, TxnSystem};
use kplock_sim::{AvoidPlan, DeadlockResolution, SimConfig};

/// One point of the certified-fraction sweep: a system whose first
/// `certified` transactions follow the global ascending lock order and a
/// plan certifying exactly that prefix.
#[derive(Clone, Debug)]
pub struct AvoidScenario {
    /// Human-readable tag, e.g. `certified=2/4`.
    pub name: String,
    /// How many transactions the plan certifies (the prefix length).
    pub certified: usize,
    /// The generated, locked transaction system.
    pub system: TxnSystem,
    /// The synthesized plan, certified set pinned to the prefix.
    pub plan: AvoidPlan,
}

impl AvoidScenario {
    /// A [`SimConfig`] running this scenario under the avoidance arm at
    /// the given fixed latency (everything else left at the defaults for
    /// the caller to override via struct update).
    pub fn config(&self, latency: u64) -> SimConfig {
        SimConfig {
            latency: kplock_sim::LatencyModel::Fixed(latency),
            resolution: DeadlockResolution::Avoid,
            avoid: Some(self.plan.clone()),
            ..Default::default()
        }
    }
}

/// A deterministic system with a known certifiable prefix: the first
/// `certified` transactions lock all `entities` entities in ascending
/// name order (mutually consistent — any subset of them certifies
/// together), and the remaining `fallback` transactions use *rotated*
/// lock orders whose wrap-around hold-while-request edge contradicts the
/// ascending order (so adding any of them to a non-empty ascending
/// certificate closes a cycle). All transactions are synchronized 2PL
/// over the same entity set, placed round-robin over `sites` sites —
/// deadlock-prone between prefix and rotated tail, serializable on
/// commit, RNG-free.
pub fn certified_mix(
    entities: usize,
    certified: usize,
    fallback: usize,
    sites: usize,
) -> TxnSystem {
    assert!(
        entities >= 2,
        "need two entities for a lock order to matter"
    );
    assert!(
        sites > 0 && sites <= entities,
        "site count {sites} needs at least one entity each (have {entities})"
    );
    assert!(certified + fallback >= 1, "need at least one transaction");
    let names: Vec<String> = (0..entities).map(|i| format!("e{i}")).collect();
    let spec: Vec<(&str, usize)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i % sites))
        .collect();
    let db = Database::from_spec(&spec);
    let build = |tag: String, order: &[usize]| {
        let ordered: Vec<&str> = order.iter().map(|&i| names[i].as_str()).collect();
        // Synchronized 2PL: all locks (given order), all updates, all
        // unlocks — totally ordered.
        let script: Vec<String> = ordered
            .iter()
            .map(|e| format!("L{e}"))
            .chain(ordered.iter().map(|e| e.to_string()))
            .chain(ordered.iter().map(|e| format!("U{e}")))
            .collect();
        let mut b = TxnBuilder::new(&db, tag);
        b.script(&script.join(" ")).expect("generated names");
        b.build().expect("totally ordered scripts are acyclic")
    };
    let ascending: Vec<usize> = (0..entities).collect();
    let mut txns = Vec::with_capacity(certified + fallback);
    for t in 0..certified {
        txns.push(build(format!("C{}", t + 1), &ascending));
    }
    for t in 0..fallback {
        // Never offset 0: a rotation by 0 would be ascending and hence
        // consistent with the prefix instead of conflicting with it.
        let offset = t % (entities - 1) + 1;
        let rotated: Vec<usize> = (0..entities).map(|i| (i + offset) % entities).collect();
        txns.push(build(format!("F{}", t + 1), &rotated));
    }
    TxnSystem::new(db, txns)
}

/// The greedy-conservatism family: one ascending transaction declared
/// *first*, then `descending` transactions all using the same descending
/// lock order. Declaration-order greedy synthesis
/// ([`AvoidPlan::synthesize`]) admits the ascending transaction and then
/// rejects every descender (each closes a cycle with it), certifying
/// exactly 1; the optimum drops the lone ascender and certifies all
/// `descending` mutually-consistent transactions.
/// `kplock_core::sat_check::synthesize_optimal` finds that optimum, and
/// experiments table D5 sweeps this family to quantify the gap.
///
/// Two entities on `sites` sites (1 or 2), synchronized-2PL scripts,
/// RNG-free; safe but deadlock-prone (opposed lock orders), like the
/// rotated tail of [`certified_mix`].
pub fn opposed_mix(descending: usize, sites: usize) -> TxnSystem {
    assert!(descending >= 1, "need at least one descending transaction");
    assert!(
        sites == 1 || sites == 2,
        "two entities spread over at most two sites"
    );
    let db = Database::from_spec(&[("x", 0), ("y", sites - 1)]);
    let build = |tag: String, order: [&str; 2]| {
        let script = format!("L{a} L{b} {a} {b} U{a} U{b}", a = order[0], b = order[1]);
        let mut b = TxnBuilder::new(&db, tag);
        b.script(&script).expect("fixed names");
        b.build().expect("totally ordered script")
    };
    let mut txns = vec![build("A".into(), ["x", "y"])];
    for t in 0..descending {
        txns.push(build(format!("D{}", t + 1), ["y", "x"]));
    }
    TxnSystem::new(db, txns)
}

/// Sweeps the certified fraction on a fixed offered load: for each entry
/// of `certified_counts`, a [`certified_mix`] system with that many
/// ascending transactions (and `txns - count` rotated ones) plus a plan
/// certifying **exactly** the ascending prefix —
/// [`AvoidPlan::synthesize_restricted`] with the prefix as the candidate
/// set, so `certified = 0` yields the genuinely empty certificate the
/// wound-wait-equivalence tests pin against (greedy synthesis would
/// certify a lone rotated transaction, whose solo lock order is still
/// total).
///
/// Deterministic by construction. Each count must be ≤ `txns`.
pub fn avoid_mix_sweep(
    entities: usize,
    txns: usize,
    sites: usize,
    certified_counts: &[usize],
) -> Vec<AvoidScenario> {
    certified_counts
        .iter()
        .map(|&count| {
            assert!(
                count <= txns,
                "cannot certify {count} of {txns} transactions"
            );
            let system = certified_mix(entities, count, txns - count, sites);
            let prefix: Vec<TxnId> = (0..count).map(TxnId::from_idx).collect();
            let plan = AvoidPlan::synthesize_restricted(&system, &prefix);
            debug_assert_eq!(plan.certified_count(), count);
            AvoidScenario {
                name: format!("certified={count}/{txns}"),
                certified: count,
                system,
                plan,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::Level;
    use kplock_sim::{run, PreventionScheme, RunOutcome};

    #[test]
    fn mix_shape_and_determinism() {
        let s = certified_mix(6, 2, 3, 3);
        s.validate(Level::Strict).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.db().entity_count(), 6);
        assert_eq!(s.db().site_count(), 3);
        for t in s.txns() {
            assert_eq!(t.locked_entities().len(), 6);
        }
        let again = certified_mix(6, 2, 3, 3);
        for (a, b) in s.txns().iter().zip(again.txns()) {
            assert_eq!(a.steps(), b.steps());
        }
    }

    #[test]
    fn opposed_mix_greedy_gap_is_by_construction() {
        for k in 1..=4 {
            let sys = opposed_mix(k, 2);
            sys.validate(Level::Strict).unwrap();
            assert_eq!(sys.len(), k + 1);
            // Greedy keeps only the first-declared ascender...
            let greedy = AvoidPlan::synthesize(&sys);
            assert_eq!(greedy.certified_count(), 1);
            // ...while the descenders are mutually consistent.
            let descenders: Vec<TxnId> = (1..=k).map(TxnId::from_idx).collect();
            let all = AvoidPlan::synthesize_restricted(&sys, &descenders);
            assert_eq!(all.certified_count(), k);
            all.verify(&sys).unwrap();
        }
    }

    #[test]
    fn sweep_pins_the_certified_count_exactly() {
        let sweep = avoid_mix_sweep(4, 4, 2, &[0, 2, 4]);
        assert_eq!(sweep.len(), 3);
        for (sc, &want) in sweep.iter().zip(&[0usize, 2, 4]) {
            assert_eq!(sc.certified, want);
            assert_eq!(sc.name, format!("certified={want}/4"));
            assert_eq!(sc.plan.certified_count(), want);
            assert_eq!(sc.plan.txn_count(), 4);
            sc.plan.verify(&sc.system).unwrap();
            // The certificate is the declared prefix, nothing else.
            let ids: Vec<usize> = sc.plan.certified().iter().map(|t| t.idx()).collect();
            assert_eq!(ids, (0..want).collect::<Vec<_>>());
            sc.system.validate(Level::Strict).unwrap();
        }
        // Restricted synthesis is the point: greedy would certify a lone
        // rotated transaction (its solo order is still total), so the
        // empty-certificate rung only exists through the restriction.
        let zero = &sweep[0];
        assert!(AvoidPlan::synthesize(&zero.system).certified_count() > 0);
        assert_eq!(zero.plan.certified_count(), 0);
    }

    #[test]
    fn fully_certified_rung_runs_clean_of_deadlock_machinery() {
        for sc in avoid_mix_sweep(4, 3, 2, &[3]) {
            let cfg = sc.config(5);
            cfg.validate().unwrap();
            let r = run(&sc.system, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "{}", sc.name);
            assert_eq!(r.metrics.deadlocks_resolved, 0);
            assert_eq!(r.metrics.prevention_restarts, 0);
            assert_eq!(r.metrics.aborts, 0);
            assert_eq!(r.metrics.probe_messages, 0);
            assert_eq!(r.metrics.avoid_certified, 3);
            assert_eq!(r.metrics.avoid_fallbacks, 0);
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn mixed_rungs_never_deadlock_and_meter_the_fallback() {
        for sc in avoid_mix_sweep(4, 4, 2, &[0, 2]) {
            let cfg = sc.config(5);
            let r = run(&sc.system, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "{}", sc.name);
            assert_eq!(r.metrics.deadlocks_resolved, 0, "{}", sc.name);
            assert_eq!(r.metrics.avoid_certified, sc.certified);
            assert_eq!(r.metrics.avoid_fallbacks, 4 - sc.certified);
            // Every abort is a wound-wait fallback restart, never a
            // detected cycle.
            assert_eq!(r.metrics.aborts, r.metrics.prevention_restarts);
            assert!(r.audit.serializable, "{}", sc.name);
        }
    }

    #[test]
    fn fallback_only_mix_is_wound_wait_shaped() {
        // The certified=0 rung against plain wound-wait on the same
        // system: the avoidance arm with an empty certificate must do the
        // same work (the full field-equivalence pin lives in the sim's
        // conformance tests; this guards the workload-side contract).
        let sc = &avoid_mix_sweep(4, 3, 2, &[0])[0];
        let avoid = run(&sc.system, &sc.config(5)).unwrap();
        let ww = run(
            &sc.system,
            &SimConfig {
                latency: kplock_sim::LatencyModel::Fixed(5),
                resolution: PreventionScheme::WoundWait.into(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(avoid.outcome, ww.outcome);
        assert_eq!(avoid.metrics.aborts, ww.metrics.aborts);
        assert_eq!(
            avoid.metrics.prevention_restarts,
            ww.metrics.prevention_restarts
        );
        assert_eq!(avoid.metrics.makespan, ww.metrics.makespan);
    }
}
