//! Named Theorem-3 instances for examples, tests and benchmarks.

use kplock_core::reduction::{reduce, Reduction};
use kplock_sat::{random_restricted, to_restricted_form, Cnf};

/// The paper's Fig. 8 formula: `(x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3)`.
pub fn fig8_formula() -> Cnf {
    Cnf::from_clauses(
        3,
        &[
            &[(0, true), (1, true), (2, true)],
            &[(0, false), (1, true), (2, false)],
        ],
    )
}

/// The Fig. 8/9 reduction of [`fig8_formula`].
pub fn fig8_reduction() -> Reduction {
    reduce(&fig8_formula()).expect("fig8 formula is in restricted form")
}

/// An unsatisfiable formula in restricted form (all four sign patterns of
/// `(a ∨ b)`, pushed through the restricted-form converter).
pub fn unsat_restricted() -> Cnf {
    let raw = Cnf::from_clauses(
        2,
        &[
            &[(0, true), (1, true)],
            &[(0, true), (1, false)],
            &[(0, false), (1, true)],
            &[(0, false), (1, false)],
        ],
    );
    let r = to_restricted_form(&raw);
    assert_eq!(r.decided, None, "needs a real reduction instance");
    r.cnf
}

/// A random restricted instance (clauses of width 2–3, occurrence budget
/// respected). Rejects empty formulas.
pub fn random_instance(seed: u64, vars: usize, clauses: usize) -> Cnf {
    let mut s = seed;
    loop {
        let f = random_restricted(s, vars, clauses);
        if !f.clauses.is_empty() {
            return f;
        }
        s = s.wrapping_add(0x9E37);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_core::closure::try_unsafety_via_dominator;
    use kplock_core::reduction::reduce;
    use kplock_model::TxnId;
    use kplock_sat::{solve, SatResult};

    #[test]
    fn unsat_instance_reduces_and_is_unsat() {
        let f = unsat_restricted();
        assert!(f.is_restricted_form());
        assert_eq!(solve(&f), SatResult::Unsat);
        let r = reduce(&f).unwrap();
        assert!(r.verify_intended());
    }

    /// End-to-end Theorem 3 on random instances: satisfiable ⟹ a verified
    /// unsafety certificate exists via the model's dominator.
    #[test]
    fn random_sat_instances_give_certificates() {
        let mut sat_seen = 0;
        for seed in 0..40 {
            let f = random_instance(seed, 6, 4);
            let r = reduce(&f).unwrap();
            assert!(r.verify_intended(), "seed {seed}");
            if let SatResult::Sat(model) = solve(&f) {
                sat_seen += 1;
                let dom = r.dominator_for_assignment(&model);
                let cert = try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom)
                    .unwrap_or_else(|| panic!("seed {seed}: desirable dominator must close"));
                cert.verify(&r.sys).unwrap();
            }
        }
        assert!(sat_seen >= 10, "want a healthy satisfiable sample");
    }
}
