//! Hierarchical (multi-granularity) workloads over a two-level catalog.
//!
//! A catalog of `files × records_per_file` entities — realistically sized,
//! 10⁵–10⁶ records — with every record a child of its file
//! ([`kplock_model::Database::add_child`]). Transactions arrive open-loop
//! (seeded inter-arrival gaps, see [`HierarchyScenario::arrivals`]) and
//! pick their file by a Zipfian draw, so hot files absorb most traffic.
//!
//! The same *logical* accesses are materialized under any
//! [`Granularity`] arm: [`Granularity::Flat`] locks every touched record
//! individually (the pre-hierarchy behavior, one lock request per
//! record), while [`Granularity::Hierarchical`] plans one parent lock
//! per transaction via [`plan_parent`] — intention modes below the
//! escalation threshold, coarse `S`/`X`/`SIX` at or above it — and only
//! the child locks the plan leaves necessary. [`hierarchy_sweep`] builds
//! one scenario per arm from identical draws, so any difference in lock
//! traffic or makespan is pure granularity policy.

use crate::zipf::Zipf;
use kplock_model::hierarchy::{plan_parent, ChildLocks, Granularity};
use kplock_model::{Database, EntityId, LockMode, SiteId, Step, StepId, Transaction, TxnSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a transaction does once it has picked a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessProfile {
    /// A handful of record reads, occasionally one write — point queries.
    /// Hierarchical arms stay below the escalation threshold (`IS`/`IX`).
    ReadMostly,
    /// A burst of record writes against the hot files. Crosses the
    /// threshold when the burst is large enough (coarse `X`).
    WriteHot,
    /// Reads **every** record of the file plus a few writes — the case
    /// hierarchical locking exists for: flat arms pay one lock per
    /// record, hierarchical arms escalate to one `SIX` (or `S`) on the
    /// file.
    Scan,
}

/// Parameters for hierarchical workload generation.
#[derive(Clone, Debug)]
pub struct HierarchyParams {
    /// Number of files (hierarchy parents), placed round-robin on sites.
    pub files: usize,
    /// Records per file; records live at their file's site. Total entity
    /// count is `files * records_per_file` (+ the files themselves).
    pub records_per_file: usize,
    /// Number of sites.
    pub sites: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Zipfian skew of the file choice, in `[0, 1)`; `0.0` draws files
    /// uniformly.
    pub zipf_theta: f64,
    /// The per-transaction access shape.
    pub profile: AccessProfile,
    /// Mean open-loop inter-arrival gap in simulator ticks; arrival `i`
    /// is the sum of `i` seeded draws from `1..=2*gap` (gap `0` makes
    /// every transaction arrive at tick 0, the closed-batch shape).
    pub arrival_gap: u64,
    /// RNG seed. Identical seeds make identical *logical* accesses under
    /// every granularity arm.
    pub seed: u64,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        HierarchyParams {
            files: 8,
            records_per_file: 64,
            sites: 2,
            transactions: 16,
            zipf_theta: 0.6,
            profile: AccessProfile::ReadMostly,
            arrival_gap: 40,
            seed: 1,
        }
    }
}

/// One materialized arm of a hierarchical workload.
#[derive(Clone, Debug)]
pub struct HierarchyScenario {
    /// Human-readable tag, e.g. `flat` or `hier(t=16)`.
    pub name: String,
    /// The granularity arm this system was materialized under.
    pub granularity: Granularity,
    /// The locked transaction system (over the two-level catalog).
    pub system: TxnSystem,
    /// Open-loop arrival tick per transaction, for
    /// `kplock_sim::run_with_arrivals`.
    pub arrivals: Vec<u64>,
}

/// Builds the two-level catalog: file `f<i>` at site `i % sites`, records
/// `f<i>/r<j>` as its children at the same site.
pub fn two_level_catalog(files: usize, records_per_file: usize, sites: usize) -> Database {
    assert!(files > 0 && records_per_file > 0 && sites > 0);
    let mut db = Database::new();
    for i in 0..files {
        let site = SiteId::from_idx(i % sites);
        let f = db.add_entity(&format!("f{i}"), site);
        for j in 0..records_per_file {
            db.add_child(&format!("f{i}/r{j}"), site, f);
        }
    }
    db
}

/// The logical accesses of one transaction: a file plus disjoint read and
/// write record sets (indices within the file), before any locking
/// decision.
#[derive(Clone, Debug)]
struct TxnAccess {
    file: usize,
    reads: Vec<usize>,
    writes: Vec<usize>,
}

/// Draws `k` distinct record indices from `0..n` (k ≤ n), excluding
/// `taken`, ascending.
fn draw_distinct(rng: &mut StdRng, n: usize, k: usize, taken: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::with_capacity(k);
    while out.len() < k {
        let r = rng.gen_range(0..n);
        if !taken.contains(&r) && !out.contains(&r) {
            out.push(r);
        }
    }
    out.sort_unstable();
    out
}

/// All the randomness of a workload, drawn once: the per-transaction
/// logical accesses and the open-loop arrival ticks. Every granularity
/// arm materializes from the same result.
fn draw_accesses(p: &HierarchyParams) -> (Vec<TxnAccess>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let file_pick = (p.zipf_theta > 0.0).then(|| Zipf::new(p.files, p.zipf_theta));
    let rpf = p.records_per_file;
    let mut accesses = Vec::with_capacity(p.transactions);
    let mut arrivals = Vec::with_capacity(p.transactions);
    let mut clock = 0u64;
    for _ in 0..p.transactions {
        let file = match &file_pick {
            Some(z) => z.sample(&mut rng),
            None => rng.gen_range(0..p.files),
        };
        let (reads, writes) = match p.profile {
            AccessProfile::ReadMostly => {
                let writes = if rng.gen_range(0u32..100) < 20 {
                    draw_distinct(&mut rng, rpf, 1.min(rpf), &[])
                } else {
                    Vec::new()
                };
                let nr = 4.min(rpf - writes.len());
                (draw_distinct(&mut rng, rpf, nr, &writes), writes)
            }
            AccessProfile::WriteHot => {
                let nw = 4.min(rpf);
                (Vec::new(), draw_distinct(&mut rng, rpf, nw, &[]))
            }
            AccessProfile::Scan => {
                let nw = 2.min(rpf.saturating_sub(1));
                let writes = draw_distinct(&mut rng, rpf, nw, &[]);
                let reads = (0..rpf).filter(|r| !writes.contains(r)).collect();
                (reads, writes)
            }
        };
        accesses.push(TxnAccess {
            file,
            reads,
            writes,
        });
        if p.arrival_gap > 0 {
            clock += rng.gen_range(1..=2 * p.arrival_gap);
        }
        arrivals.push(clock);
    }
    (accesses, arrivals)
}

/// Materializes one transaction under `g`. Everything lives at one site
/// (a transaction touches one file), so a full chain of edges keeps the
/// per-site total order; locking is two-phase (all locks, accesses, all
/// unlocks) with children in ascending record order, so same-file
/// transactions cannot deadlock among themselves.
fn materialize(db: &Database, name: &str, a: &TxnAccess, g: Granularity) -> Transaction {
    let file: EntityId = db.entity(&format!("f{}", a.file)).expect("catalog");
    let rec = |j: &usize| -> EntityId { db.entity(&format!("f{}/r{j}", a.file)).expect("catalog") };
    // Child locks are taken in ascending record order with reads and
    // writes *merged* — a per-file total lock order, so same-file
    // transactions cannot deadlock (and there are no cross-file cycles:
    // a transaction touches exactly one file).
    let merged_locks = |reads: &[usize], writes: &[usize]| -> Vec<(usize, bool)> {
        let mut v: Vec<(usize, bool)> = reads
            .iter()
            .map(|&j| (j, false))
            .chain(writes.iter().map(|&j| (j, true)))
            .collect();
        v.sort_unstable();
        v
    };
    let mut steps: Vec<Step> = Vec::new();
    match g {
        Granularity::Flat => {
            // One lock per touched record, shared for reads.
            for &(j, w) in &merged_locks(&a.reads, &a.writes) {
                steps.push(if w {
                    Step::lock(rec(&j))
                } else {
                    Step::lock_shared(rec(&j))
                });
            }
            for j in &a.reads {
                steps.push(Step::read(rec(j)));
            }
            for j in &a.writes {
                steps.push(Step::update(rec(j)));
            }
            for j in a.reads.iter().chain(&a.writes) {
                steps.push(Step::unlock(rec(j)));
            }
        }
        Granularity::Hierarchical {
            escalation_threshold,
        } => {
            let plan = plan_parent(
                a.reads.len() as u32,
                a.writes.len() as u32,
                escalation_threshold,
            );
            steps.push(Step::lock(file).with_mode(plan.parent_mode));
            let (lock_reads, lock_writes) = match plan.child_locks {
                ChildLocks::All => (true, true),
                ChildLocks::WritesOnly => (false, true),
                ChildLocks::None => (false, false),
            };
            let locks = merged_locks(
                if lock_reads { &a.reads } else { &[] },
                if lock_writes { &a.writes } else { &[] },
            );
            for &(j, w) in &locks {
                steps.push(if w {
                    Step::lock(rec(&j))
                } else {
                    Step::lock_shared(rec(&j))
                });
            }
            for j in &a.reads {
                steps.push(Step::read(rec(j)));
            }
            for j in &a.writes {
                steps.push(Step::update(rec(j)));
            }
            if lock_reads {
                for j in &a.reads {
                    steps.push(Step::unlock(rec(j)));
                }
            }
            if lock_writes {
                for j in &a.writes {
                    steps.push(Step::unlock(rec(j)));
                }
            }
            steps.push(Step::unlock(file));
            debug_assert!(
                lock_writes
                    || a.writes.is_empty()
                    || plan.parent_mode.shields_child(LockMode::Exclusive),
                "unshielded writes must carry child locks"
            );
        }
    }
    let edges: Vec<(StepId, StepId)> = (1..steps.len())
        .map(|i| (StepId::from_idx(i - 1), StepId::from_idx(i)))
        .collect();
    Transaction::new(name.to_string(), steps, edges).expect("chain is acyclic")
}

/// Generates one arm: the catalog, the locked system and the open-loop
/// arrival ticks, all from `p.seed`.
pub fn hierarchy_system(p: &HierarchyParams, g: Granularity) -> HierarchyScenario {
    let db = two_level_catalog(p.files, p.records_per_file, p.sites);
    let (accesses, arrivals) = draw_accesses(p);
    let txns: Vec<Transaction> = accesses
        .iter()
        .enumerate()
        .map(|(i, a)| materialize(&db, &format!("T{}", i + 1), a, g))
        .collect();
    let name = match g {
        Granularity::Flat => "flat".to_string(),
        Granularity::Hierarchical {
            escalation_threshold,
        } => format!("hier(t={escalation_threshold})"),
    };
    HierarchyScenario {
        name,
        granularity: g,
        system: TxnSystem::new(db, txns),
        arrivals,
    }
}

/// Sweeps granularity arms over identical logical accesses: one scenario
/// per entry of `arms`, every arm materialized from the same seeded
/// draws, so lock-request counts and makespans are directly comparable.
pub fn hierarchy_sweep(p: &HierarchyParams, arms: &[Granularity]) -> Vec<HierarchyScenario> {
    arms.iter().map(|&g| hierarchy_system(p, g)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::Level;

    fn arms() -> [Granularity; 3] {
        [
            Granularity::Flat,
            Granularity::Hierarchical {
                escalation_threshold: 16,
            },
            Granularity::Hierarchical {
                escalation_threshold: 2,
            },
        ]
    }

    #[test]
    fn all_arms_are_well_formed_for_all_profiles() {
        for profile in [
            AccessProfile::ReadMostly,
            AccessProfile::WriteHot,
            AccessProfile::Scan,
        ] {
            let p = HierarchyParams {
                profile,
                transactions: 8,
                ..Default::default()
            };
            for sc in hierarchy_sweep(&p, &arms()) {
                sc.system
                    .validate(Level::Strict)
                    .unwrap_or_else(|e| panic!("{profile:?}/{}: {e}", sc.name));
                assert_eq!(sc.arrivals.len(), 8);
                assert!(sc.arrivals.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn arms_share_identical_logical_accesses() {
        let p = HierarchyParams {
            profile: AccessProfile::Scan,
            transactions: 6,
            ..Default::default()
        };
        let sweep = hierarchy_sweep(&p, &arms());
        let updates = |sc: &HierarchyScenario| -> Vec<Vec<(EntityId, LockMode)>> {
            sc.system
                .txns()
                .iter()
                .map(|t| {
                    t.steps()
                        .iter()
                        .filter(|s| s.kind == kplock_model::ActionKind::Update)
                        .map(|s| (s.entity, s.mode))
                        .collect()
                })
                .collect()
        };
        let base = updates(&sweep[0]);
        for sc in &sweep[1..] {
            assert_eq!(base, updates(sc), "{}", sc.name);
        }
        assert_eq!(sweep[0].arrivals, sweep[1].arrivals);
    }

    #[test]
    fn scans_escalate_and_shrink_lock_steps() {
        let p = HierarchyParams {
            profile: AccessProfile::Scan,
            files: 4,
            records_per_file: 128,
            transactions: 6,
            ..Default::default()
        };
        let lock_steps = |sc: &HierarchyScenario| -> usize {
            sc.system
                .txns()
                .iter()
                .flat_map(|t| t.steps())
                .filter(|s| s.kind == kplock_model::ActionKind::Lock)
                .count()
        };
        let flat = hierarchy_system(&p, Granularity::Flat);
        let hier = hierarchy_system(
            &p,
            Granularity::Hierarchical {
                escalation_threshold: 16,
            },
        );
        let (nf, nh) = (lock_steps(&flat), lock_steps(&hier));
        // Flat: one lock per record (128/txn). Hierarchical: the scan
        // escalates to one SIX on the file plus X locks on 2 writes.
        assert!(
            nf >= 5 * nh,
            "expected ≥5× fewer lock steps hierarchically: flat {nf}, hier {nh}"
        );
        // And the escalated parent mode is SIX (reads + a few writes).
        let t = &hier.system.txns()[0];
        let first = t.step(StepId::from_idx(0));
        assert_eq!(first.mode, LockMode::SharedIntentionExclusive);
    }

    #[test]
    fn point_profiles_stay_intention_locked() {
        let p = HierarchyParams {
            profile: AccessProfile::ReadMostly,
            ..Default::default()
        };
        let hier = hierarchy_system(
            &p,
            Granularity::Hierarchical {
                escalation_threshold: 16,
            },
        );
        for t in hier.system.txns() {
            let first = t.step(StepId::from_idx(0));
            assert!(
                first.mode.is_intention(),
                "{}: point access should take {} as intention",
                t.name(),
                first.mode
            );
        }
    }

    #[test]
    fn zero_gap_arrivals_all_start_at_zero() {
        let p = HierarchyParams {
            arrival_gap: 0,
            ..Default::default()
        };
        let sc = hierarchy_system(&p, Granularity::Flat);
        assert!(sc.arrivals.iter().all(|&a| a == 0));
    }
}
