//! The paper's figure instances, reconstructed and mechanically verified.
//!
//! The JCSS scan's figures are partially illegible, so each constructor
//! builds an instance with the figure's *stated properties* (documented per
//! function); the test suite and `examples/paper_figures.rs` verify those
//! properties with the exact oracle, Theorem 2 and the closure engine.

use kplock_model::{Database, StepId, TxnBuilder, TxnSystem};

/// **Fig. 1**: two transactions on two sites (x, y at site 1; w, z at
/// site 2) forming an *unsafe* system — a non-serializable schedule exists.
///
/// Each transaction locks tightly per entity (non-two-phase), and the two
/// transactions visit x and z in opposite orders across the sites, so the
/// conflict digraph is not strongly connected.
pub fn fig1() -> TxnSystem {
    let db = Database::from_spec(&[("x", 0), ("y", 0), ("w", 1), ("z", 1)]);
    // T1: site 1 runs Lx x Ux Ly y Uy; site 2 runs Lz z Uz Lw w Uw, with
    // the x-section preceding the z-section (data dependency).
    let mut b1 = TxnBuilder::new(&db, "T1");
    let s1 = b1.script("Lx x Ux Ly y Uy").unwrap();
    let s2 = b1.script("Lz z Uz Lw w Uw").unwrap();
    b1.edge(s1[2], s2[0]); // Ux before Lz
    let t1 = b1.build().unwrap();
    // T2: opposite orders: y before x at site 1; w before z at site 2.
    let mut b2 = TxnBuilder::new(&db, "T2");
    let s1 = b2.script("Ly y Uy Lx x Ux").unwrap();
    let s2 = b2.script("Lw w Uw Lz z Uz").unwrap();
    b2.edge(s2[2], s1[3]); // Uw before Lx
    let t2 = b2.build().unwrap();
    TxnSystem::new(db, vec![t1, t2])
}

/// **Fig. 2**: the geometric picture of two totally ordered (centralized)
/// transactions with rectangles for x, y, z, where the schedule `h`
/// separates the x- and z-rectangles — the pair is unsafe.
///
/// `t1 = Lx Ly x y Ux Uy Lz z Uz` (exactly the paper's horizontal axis);
/// `t2` locks x and z in one two-phase block and y separately, so a curve
/// can pass above x and below z.
pub fn fig2() -> TxnSystem {
    let db = Database::centralized(&["x", "y", "z"]);
    let mut b1 = TxnBuilder::new(&db, "t1");
    b1.script("Lx Ly x y Ux Uy Lz z Uz").unwrap();
    let t1 = b1.build().unwrap();
    let mut b2 = TxnBuilder::new(&db, "t2");
    b2.script("Lz z Uz Ly y Uy Lx x Ux").unwrap();
    let t2 = b2.build().unwrap();
    TxnSystem::new(db, vec![t1, t2])
}

/// **Fig. 3**: a two-site system `{T1, T2}` (x, y at site 1; z at site 2)
/// that is unsafe although *some* pair of linear extensions is safe —
/// unsafety only shows in other extensions (Lemma 1). Its `D(T1, T2)` has
/// the dominator {x, y}.
pub fn fig3() -> TxnSystem {
    let db = Database::from_spec(&[("x", 0), ("y", 0), ("z", 1)]);
    // T1: site 1 chain Ly Lx Uy Ux; site 2 chain Lz Uz; Lz ≺ Ux.
    let mut b1 = TxnBuilder::new(&db, "T1");
    let s1 = b1.script("Ly Lx y x Uy Ux").unwrap();
    let s2 = b1.script("Lz z Uz").unwrap();
    b1.edge(s2[0], s1[5]); // Lz before Ux
    let t1 = b1.build().unwrap();
    // T2: site 1 chain Ly Lx Uy Ux; site 2 chain Lz Uz; Ly ≺ Uz.
    let mut b2 = TxnBuilder::new(&db, "T2");
    let s1 = b2.script("Ly Lx y x Uy Ux").unwrap();
    let s2 = b2.script("Lz z Uz").unwrap();
    b2.edge(s1[0], s2[2]); // Ly before Uz
    let t2 = b2.build().unwrap();
    TxnSystem::new(db, vec![t1, t2])
}

/// **Fig. 5**: the four-site system showing that Theorem 1's condition is
/// *not necessary*: `D(T1, T2)` is not strongly connected (it is
/// `x1 ↔ x2`, `y1 ↔ y2`, `x1 → y1`; the only dominator is {x1, x2}), yet
/// the system is safe — the closure w.r.t. {x1, x2} forces `Ux1` to both
/// precede and follow `Ux2`, a contradiction.
pub fn fig5() -> TxnSystem {
    let db = Database::from_spec(&[("x1", 0), ("x2", 1), ("y1", 2), ("y2", 3)]);
    let mut b1 = TxnBuilder::new(&db, "T1");
    let mut b2 = TxnBuilder::new(&db, "T2");
    let mut l1 = std::collections::HashMap::new();
    let mut u1 = std::collections::HashMap::new();
    let mut l2 = std::collections::HashMap::new();
    let mut u2 = std::collections::HashMap::new();
    for e in ["x1", "x2", "y1", "y2"] {
        let ids = {
            let mut v: Vec<StepId> = Vec::new();
            v.push(b1.lock(e).unwrap());
            b1.update(e).unwrap();
            v.push(b1.unlock(e).unwrap());
            v
        };
        l1.insert(e, ids[0]);
        u1.insert(e, ids[1]);
        let ids = {
            let mut v: Vec<StepId> = Vec::new();
            v.push(b2.lock(e).unwrap());
            b2.update(e).unwrap();
            v.push(b2.unlock(e).unwrap());
            v
        };
        l2.insert(e, ids[0]);
        u2.insert(e, ids[1]);
    }
    // Realize the intended arcs (p, q): Lp ≺₁ Uq and Lq ≺₂ Up.
    for (p, q) in [
        ("x1", "x2"),
        ("x2", "x1"),
        ("y1", "y2"),
        ("y2", "y1"),
        ("x1", "y1"),
    ] {
        b1.edge(l1[p], u1[q]);
        b2.edge(l2[q], u2[p]);
    }
    // Closure triggers (index-shifted so no new D-arcs appear):
    // Ly1 ≺₁ Ux1, Ly2 ≺₁ Ux2; Lx2 ≺₂ Uy1, Lx1 ≺₂ Uy2.
    b1.edge(l1["y1"], u1["x1"]);
    b1.edge(l1["y2"], u1["x2"]);
    b2.edge(l2["x2"], u2["y1"]);
    b2.edge(l2["x1"], u2["y2"]);
    let t1 = b1.build().unwrap();
    let t2 = b2.build().unwrap();
    TxnSystem::new(db, vec![t1, t2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_core::{
        analyze_pair, decide_exhaustive, decide_two_site_system, OracleOptions, OracleOutcome,
        SafeProof, SafetyVerdict,
    };
    use kplock_geometry::{find_separation, PlanePicture};
    use kplock_model::{Level, TxnId};

    #[test]
    fn fig1_is_unsafe_with_witness() {
        let sys = fig1();
        sys.validate(Level::Strict).unwrap();
        let verdict = decide_two_site_system(&sys).unwrap();
        let cert = verdict.certificate().expect("Fig. 1 is unsafe");
        cert.verify(&sys).unwrap();
        // And the exact oracle agrees.
        let r = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(r.outcome, OracleOutcome::Unsafe(_)));
    }

    #[test]
    fn fig2_separates_x_and_z() {
        let sys = fig2();
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert_eq!(plane.rects.len(), 3);
        let w = find_separation(&plane).expect("Fig. 2 is unsafe");
        w.schedule.validate_complete(&sys).unwrap();
        assert!(!kplock_model::is_serializable(&sys, &w.schedule));
        // The paper's schedule h runs t1 through its x-section first and
        // t2 through its z-section first: the curve passes below the
        // x-rectangle and above the z-rectangle. Verify that exact
        // separation is achievable.
        let (x, z) = (sys.db().entity("x").unwrap(), sys.db().entity("z").unwrap());
        let rx = *plane.rect_of(x).unwrap();
        let rz = *plane.rect_of(z).unwrap();
        let wxz =
            kplock_geometry::separate(&plane, &rz, &rx).expect("curve above z, below x exists");
        wxz.schedule.validate_complete(&sys).unwrap();
        assert!(!kplock_model::is_serializable(&sys, &wxz.schedule));
    }

    #[test]
    fn fig3_unsafe_with_dominator_xy() {
        let sys = fig3();
        sys.validate(Level::Strict).unwrap();
        let analysis = analyze_pair(&sys);
        assert!(!analysis.strongly_connected);
        let cert = analysis.verdict.certificate().expect("Fig. 3 is unsafe");
        cert.verify(&sys).unwrap();
        // D restricted to {x,y} is the strongly connected part; z is
        // separated. The dominator found is either {x,y} or {z}.
        let x = sys.db().entity("x").unwrap();
        let y = sys.db().entity("y").unwrap();
        let z = sys.db().entity("z").unwrap();
        assert!(cert.dominator == vec![x, y] || cert.dominator == vec![z]);
    }

    #[test]
    fn fig3_some_extension_pair_is_safe() {
        // Lemma 1's point: at least one pair of linear extensions is safe
        // even though the distributed system is unsafe.
        let sys = fig3();
        let t1 = sys.txn(TxnId(0));
        let t2 = sys.txn(TxnId(1));
        let mut found_safe_plane = false;
        for e1 in kplock_model::linear_extensions(t1) {
            for e2 in kplock_model::linear_extensions(t2) {
                let lin = TxnSystem::new(
                    sys.db().clone(),
                    vec![t1.linearized(&e1).unwrap(), t2.linearized(&e2).unwrap()],
                );
                let plane = PlanePicture::new(&lin, TxnId(0), TxnId(1)).unwrap();
                if kplock_geometry::plane_is_safe(&plane) {
                    found_safe_plane = true;
                    break;
                }
            }
            if found_safe_plane {
                break;
            }
        }
        assert!(found_safe_plane, "Fig. 3c shows a safe (t1,t2)-plane");
    }

    #[test]
    fn fig5_safe_despite_unconnected_d() {
        let sys = fig5();
        sys.validate(Level::Strict).unwrap();
        let analysis = analyze_pair(&sys);
        assert!(!analysis.strongly_connected, "D is not strongly connected");
        assert!(
            matches!(analysis.verdict, SafetyVerdict::Safe(SafeProof::Exhaustive)),
            "safe, but only the oracle can tell: {:?}",
            analysis.verdict
        );
    }
}
