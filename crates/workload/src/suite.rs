//! Named workload corpora shared by tests, benches and examples.

use crate::figures::{fig1, fig2, fig3, fig5};
use crate::txn_gen::{random_pair, WorkloadParams};
use kplock_core::policy::LockStrategy;
use kplock_model::TxnSystem;

/// A named system with its expected safety (where known a priori).
pub struct NamedSystem {
    /// Short identifier used in reports.
    pub name: &'static str,
    /// The system.
    pub sys: TxnSystem,
    /// `Some(true)` = provably safe, `Some(false)` = provably unsafe,
    /// `None` = depends on the seed.
    pub expected_safe: Option<bool>,
}

/// The paper's figure instances.
pub fn figure_corpus() -> Vec<NamedSystem> {
    vec![
        NamedSystem {
            name: "fig1",
            sys: fig1(),
            expected_safe: Some(false),
        },
        NamedSystem {
            name: "fig2",
            sys: fig2(),
            expected_safe: Some(false),
        },
        NamedSystem {
            name: "fig3",
            sys: fig3(),
            expected_safe: Some(false),
        },
        NamedSystem {
            name: "fig5",
            sys: fig5(),
            expected_safe: Some(true),
        },
    ]
}

/// A deterministic mixed corpus of random pairs across strategies and
/// seeds — the standard regression set.
pub fn regression_corpus() -> Vec<NamedSystem> {
    let mut out = figure_corpus();
    for (strategy, expected) in [
        (LockStrategy::Minimal, None),
        (LockStrategy::TwoPhaseLoose, None),
        (LockStrategy::TwoPhaseSync, Some(true)),
    ] {
        for seed in 0..5 {
            out.push(NamedSystem {
                name: match strategy {
                    LockStrategy::Minimal => "minimal",
                    LockStrategy::TwoPhaseLoose => "loose2pl",
                    LockStrategy::TwoPhaseSync => "sync2pl",
                },
                sys: random_pair(&WorkloadParams {
                    seed,
                    strategy,
                    sites: 2,
                    entities_per_site: 2,
                    steps_per_txn: 5,
                    ..Default::default()
                }),
                expected_safe: expected,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_core::{decide_exhaustive, OracleOptions, OracleOutcome};
    use kplock_model::Level;

    #[test]
    fn corpus_is_well_formed() {
        for named in regression_corpus() {
            named
                .sys
                .validate(Level::Strict)
                .unwrap_or_else(|e| panic!("{}: {e}", named.name));
        }
    }

    #[test]
    fn expected_safety_holds() {
        for named in regression_corpus() {
            let Some(expected) = named.expected_safe else {
                continue;
            };
            let report = decide_exhaustive(&named.sys, &OracleOptions::default());
            let actual = match report.outcome {
                OracleOutcome::Safe => true,
                OracleOutcome::Unsafe(_) => false,
                OracleOutcome::Aborted => continue,
            };
            assert_eq!(actual, expected, "{}", named.name);
        }
    }
}
