//! Seed-stable Zipfian rank sampling.
//!
//! The standard one-uniform-draw Zipfian generator (Gray et al.'s
//! "Quickly generating billion-record synthetic databases", as used by
//! YCSB): the zeta normalization constants are precomputed at
//! construction, so every [`Zipf::sample`] consumes **exactly one**
//! `f64` draw from the caller's RNG. That single-draw contract is what
//! lets workload generators add skew behind a guarded knob — a disabled
//! knob makes no draw at all and existing seeds stay bit-identical,
//! while an enabled one replaces the uniform index draw one-for-one.

use rand::Rng;

/// A Zipfian distribution over ranks `0..n` (rank 0 most popular),
/// with skew exponent `theta` in `[0, 1)`. `theta = 0` degenerates to
/// uniform; typical YCSB skew is `0.99`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipf {
    /// Precomputes the constants for ranks `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is outside `[0, 1)` (the closed-form
    /// generator diverges at `theta = 1`).
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty rank space");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Draws a rank in `0..n`, consuming exactly one `f64` from `rng`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        r.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let z = Zipf::new(1000, 0.9);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = z.sample(&mut a);
            assert!(x < 1000);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Under uniform, ranks 0..100 of 10_000 get ~1% of draws; under
        // theta=0.99 they get the majority.
        assert!(
            head > DRAWS / 2,
            "expected >50% of draws in the top 1% of ranks, got {head}/{DRAWS}"
        );
    }

    #[test]
    fn theta_zero_is_near_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min < 400, "uniform-ish spread, got {min}..{max}");
    }

    #[test]
    fn tiny_rank_spaces_work() {
        let z = Zipf::new(1, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        let z = Zipf::new(2, 0.9);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < 2);
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_rejected() {
        Zipf::new(10, 1.0);
    }
}
