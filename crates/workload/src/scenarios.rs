//! Multi-site scenario generators for detection-scheme experiments.
//!
//! Distributed deadlock detection only shows its cost when cycles span
//! sites; these generators sweep the two axes that control that:
//!
//! * [`site_count_sweep`] — the same offered load spread over 1, 2, 4, …
//!   sites, so detection traffic can be read as a function of how
//!   *distributed* the system is (the paper's title question, measured);
//! * [`hot_site_sweep`] — a fixed topology with an increasingly skewed
//!   access pattern toward one hot site, the adversarial case where a
//!   central scan sees everything cheaply but probe chases all funnel
//!   through one table;
//! * [`resolution_sweep`] — rotated-lock-order systems (the canonical
//!   deadlock-prone-but-safe shape) across site counts, built for the
//!   detection-vs-prevention axis: under detection they exercise cycles
//!   and probe chases, under prevention the same conflicts become wounds
//!   and deaths, so restart-vs-message trade-offs read off directly.
//!
//! Every scenario is seeded and deterministic, sized for simulator runs
//! (not statistical benchmarks), and locked with synchronized 2PL so
//! deadlocks are guaranteed resolvable and commits audit serializable.

use crate::txn_gen::{random_system, WorkloadParams};
use kplock_model::{Database, TxnBuilder, TxnSystem};

/// One generated scenario, tagged with the swept parameter value.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable tag, e.g. `sites=4` or `hot=80`.
    pub name: String,
    /// The swept value (site count or hot-site percentage).
    pub value: usize,
    /// The generated, locked transaction system.
    pub system: TxnSystem,
}

/// Sweeps the site count while holding the total entity count and the
/// per-transaction work fixed: `entities_total` is distributed evenly, so
/// more sites means the *same* data spread thinner — contention per
/// entity is constant and only the distribution cost varies.
///
/// `site_counts` entries must divide `entities_total`.
pub fn site_count_sweep(
    base: &WorkloadParams,
    entities_total: usize,
    site_counts: &[usize],
) -> Vec<Scenario> {
    site_counts
        .iter()
        .map(|&sites| {
            assert!(
                sites > 0 && entities_total.is_multiple_of(sites),
                "site count {sites} must divide {entities_total} entities"
            );
            let p = WorkloadParams {
                sites,
                entities_per_site: entities_total / sites,
                ..base.clone()
            };
            Scenario {
                name: format!("sites={sites}"),
                value: sites,
                system: random_system(&p),
            }
        })
        .collect()
}

/// Sweeps access skew toward site 0 on a fixed topology:
/// `hot_percents` are [`WorkloadParams::hot_site_percent`] values
/// (0 = uniform, 100 = every access hits the hot site).
pub fn hot_site_sweep(base: &WorkloadParams, hot_percents: &[u32]) -> Vec<Scenario> {
    hot_percents
        .iter()
        .map(|&hot| {
            assert!(hot <= 100, "hot_site_percent is a percentage");
            let p = WorkloadParams {
                hot_site_percent: hot,
                ..base.clone()
            };
            Scenario {
                name: format!("hot={hot}"),
                value: hot as usize,
                system: random_system(&p),
            }
        })
        .collect()
}

/// Sweeps Zipfian skew over the entities *within* each site on a fixed
/// topology: `thetas` are [`WorkloadParams::zipf_theta`] exponents
/// (0 = uniform; θ ≥ 0.9 concentrates most accesses on each site's
/// first few entities — the re-acquire-heavy regime where delegated
/// lock ownership pays). [`Scenario::value`] carries `θ × 100`.
pub fn zipf_sweep(base: &WorkloadParams, thetas: &[f64]) -> Vec<Scenario> {
    thetas
        .iter()
        .map(|&theta| {
            assert!(theta >= 0.0, "zipf_theta is a non-negative exponent");
            let p = WorkloadParams {
                zipf_theta: theta,
                ..base.clone()
            };
            Scenario {
                name: format!("zipf={theta}"),
                value: (theta * 100.0) as usize,
                system: random_system(&p),
            }
        })
        .collect()
}

/// Sweeps site count on a fixed *rotated-lock-order* contention structure:
/// `txns` synchronized-2PL transactions each lock the same `entities`
/// entities, transaction `t` starting its lock order at entity `t` — every
/// pair conflicts in both orders, so wait-for cycles (under detection) and
/// timestamp inversions (under prevention) are guaranteed wherever timing
/// allows. Entities are placed round-robin over `sites` sites, so across
/// the sweep the *conflict structure is identical* and only its
/// distribution varies: any change in restarts, messages or makespan is
/// pure distribution cost — the right instrument for comparing the
/// simulator's `DeadlockResolution` arms (`kplock-sim` is a dev-dependency
/// here, so no intra-doc link).
///
/// Deterministic by construction (no RNG anywhere). Each `site_counts`
/// entry must be between 1 and `entities`.
pub fn resolution_sweep(entities: usize, txns: usize, site_counts: &[usize]) -> Vec<Scenario> {
    assert!(entities >= 2 && txns >= 2, "need a conflict to sweep");
    site_counts
        .iter()
        .map(|&sites| {
            assert!(
                sites > 0 && sites <= entities,
                "site count {sites} needs at least one entity each (have {entities})"
            );
            let names: Vec<String> = (0..entities).map(|i| format!("e{i}")).collect();
            let spec: Vec<(&str, usize)> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i % sites))
                .collect();
            let db = Database::from_spec(&spec);
            let built = (0..txns)
                .map(|t| {
                    let order: Vec<&str> = (0..entities)
                        .map(|i| names[(i + t) % entities].as_str())
                        .collect();
                    // Synchronized 2PL: all locks (rotated order), all
                    // updates, all unlocks — totally ordered.
                    let script: Vec<String> = order
                        .iter()
                        .map(|e| format!("L{e}"))
                        .chain(order.iter().map(|e| e.to_string()))
                        .chain(order.iter().map(|e| format!("U{e}")))
                        .collect();
                    let mut b = TxnBuilder::new(&db, format!("T{}", t + 1));
                    b.script(&script.join(" ")).expect("generated names");
                    b.build().expect("totally ordered scripts are acyclic")
                })
                .collect();
            Scenario {
                name: format!("sites={sites}"),
                value: sites,
                system: TxnSystem::new(db, built),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_core::policy::LockStrategy;
    use kplock_model::Level;

    fn base() -> WorkloadParams {
        WorkloadParams {
            seed: 11,
            transactions: 4,
            steps_per_txn: 6,
            strategy: LockStrategy::TwoPhaseSync,
            ..Default::default()
        }
    }

    #[test]
    fn site_sweep_holds_data_constant() {
        let sweep = site_count_sweep(&base(), 12, &[1, 2, 4, 6]);
        assert_eq!(sweep.len(), 4);
        for sc in &sweep {
            sc.system.validate(Level::Strict).unwrap();
            assert_eq!(sc.system.db().entity_count(), 12);
            assert_eq!(sc.system.db().site_count(), sc.value);
            assert_eq!(sc.name, format!("sites={}", sc.value));
        }
        // Deterministic.
        let again = site_count_sweep(&base(), 12, &[1, 2, 4, 6]);
        for (a, b) in sweep.iter().zip(&again) {
            for (ta, tb) in a.system.txns().iter().zip(b.system.txns()) {
                assert_eq!(ta.steps(), tb.steps());
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn site_sweep_rejects_uneven_splits() {
        site_count_sweep(&base(), 10, &[3]);
    }

    #[test]
    fn hot_sweep_concentrates_accesses() {
        let p = WorkloadParams {
            sites: 4,
            entities_per_site: 3,
            transactions: 6,
            steps_per_txn: 8,
            ..base()
        };
        let sweep = hot_site_sweep(&p, &[0, 50, 100]);
        let hot_share = |sc: &Scenario| -> f64 {
            let db = sc.system.db();
            let accesses: Vec<_> = sc
                .system
                .txns()
                .iter()
                .flat_map(|t| t.steps())
                .filter(|s| s.kind == kplock_model::ActionKind::Update)
                .map(|s| db.site_of(s.entity).idx())
                .collect();
            let hot = accesses.iter().filter(|&&s| s == 0).count();
            hot as f64 / accesses.len() as f64
        };
        let shares: Vec<f64> = sweep.iter().map(hot_share).collect();
        assert!(shares[0] < shares[1] && shares[1] < shares[2], "{shares:?}");
        assert_eq!(shares[2], 1.0, "hot=100 puts every access on site 0");
        for sc in &sweep {
            sc.system.validate(Level::Strict).unwrap();
        }
    }

    #[test]
    fn zipf_sweep_concentrates_accesses_on_low_indices() {
        let p = WorkloadParams {
            sites: 2,
            entities_per_site: 6,
            transactions: 8,
            steps_per_txn: 8,
            ..base()
        };
        let sweep = zipf_sweep(&p, &[0.0, 0.9]);
        assert_eq!(sweep[0].value, 0);
        assert_eq!(sweep[1].value, 90);
        assert_eq!(sweep[1].name, "zipf=0.9");
        let low_share = |sc: &Scenario| -> f64 {
            // Share of accesses on each site's first entity (global
            // indices 0 and 6): Zipf rank 1 of 6.
            let accesses: Vec<_> = sc
                .system
                .txns()
                .iter()
                .flat_map(|t| t.steps())
                .filter(|s| s.kind == kplock_model::ActionKind::Update)
                .map(|s| s.entity.0 as usize % 6)
                .collect();
            let low = accesses.iter().filter(|&&i| i == 0).count();
            low as f64 / accesses.len() as f64
        };
        assert!(
            low_share(&sweep[1]) > low_share(&sweep[0]),
            "θ=0.9 must concentrate accesses on the first entities"
        );
        for sc in &sweep {
            sc.system.validate(Level::Strict).unwrap();
        }
        // θ=0 is seed-identical to the base workload.
        let plain = random_system(&p);
        for (a, b) in plain.txns().iter().zip(sweep[0].system.txns()) {
            assert_eq!(a.steps(), b.steps());
        }
    }

    #[test]
    fn zero_hot_percent_is_seed_identical_to_base() {
        let p = base();
        let plain = random_system(&p);
        let sweep = hot_site_sweep(&p, &[0]);
        for (a, b) in plain.txns().iter().zip(sweep[0].system.txns()) {
            assert_eq!(a.steps(), b.steps());
        }
    }

    #[test]
    fn resolution_sweep_is_deadlock_prone_safe_and_distribution_invariant() {
        use kplock_sim::{run, DeadlockDetection, LatencyModel, SimConfig};
        let sweep = resolution_sweep(6, 4, &[1, 2, 3, 6]);
        assert_eq!(sweep.len(), 4);
        for sc in &sweep {
            sc.system.validate(Level::Strict).unwrap();
            assert_eq!(sc.system.db().entity_count(), 6);
            assert_eq!(sc.system.db().site_count(), sc.value);
            // Same conflict structure at every site count: every pair of
            // transactions locks the same entity set.
            for t in sc.system.txns() {
                assert_eq!(t.locked_entities().len(), 6);
            }
        }
        // The structure actually deadlocks under detection (that is its
        // job), and 2PL keeps the commits serializable.
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            resolution: DeadlockDetection::Periodic.into(),
            ..Default::default()
        };
        let mut deadlocks = 0;
        for sc in &sweep {
            let r = run(&sc.system, &cfg).unwrap();
            assert!(r.finished(), "{}", sc.name);
            assert!(r.audit.serializable, "{}", sc.name);
            deadlocks += r.metrics.deadlocks_resolved;
        }
        assert!(deadlocks > 0, "rotated orders must provoke deadlock");
    }

    #[test]
    fn resolution_sweep_prevention_never_detects_anything() {
        use kplock_sim::{run, PreventionScheme, SimConfig};
        for sc in resolution_sweep(4, 3, &[2, 4]) {
            for scheme in [
                PreventionScheme::WoundWait,
                PreventionScheme::WaitDie,
                PreventionScheme::NoWait,
            ] {
                let cfg = SimConfig {
                    latency: kplock_sim::LatencyModel::Fixed(5),
                    resolution: scheme.into(),
                    ..Default::default()
                };
                let r = run(&sc.system, &cfg).unwrap();
                assert!(r.finished(), "{} under {scheme:?}", sc.name);
                assert_eq!(r.metrics.deadlocks_resolved, 0);
                assert_eq!(r.metrics.probe_messages, 0);
                assert!(r.audit.serializable);
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs at least one entity each")]
    fn resolution_sweep_rejects_more_sites_than_entities() {
        resolution_sweep(3, 2, &[4]);
    }

    #[test]
    fn scenarios_run_under_every_detection_scheme() {
        use kplock_sim::{run, DeadlockDetection, LatencyModel, SimConfig};
        let sweep = site_count_sweep(&base(), 6, &[2, 3]);
        for sc in &sweep {
            for detection in [
                DeadlockDetection::Periodic,
                DeadlockDetection::OnBlock,
                DeadlockDetection::Probe,
            ] {
                let cfg = SimConfig {
                    latency: LatencyModel::Fixed(5),
                    resolution: detection.into(),
                    probe_audit: true,
                    ..Default::default()
                };
                let r = run(&sc.system, &cfg).unwrap();
                assert!(r.finished(), "{} under {detection:?}", sc.name);
                assert!(r.audit.serializable, "{} under {detection:?}", sc.name);
                assert_eq!(r.metrics.phantom_probe_aborts, 0);
            }
        }
    }
}
