//! Random distributed transaction generation.
//!
//! A generated transaction is a set of per-site chains of update steps plus
//! random cross-site precedence edges (always forward with respect to a
//! global step numbering, so the result is a dag), then locked by one of
//! the strategies in `kplock_core::policy::insert`.

use crate::zipf::Zipf;
use kplock_core::policy::{insert_locks, LockStrategy};
use kplock_model::{Database, ModelError, SiteId, Step, StepId, Transaction, TxnSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random workload generation.
#[derive(Clone, Debug)]
pub struct WorkloadParams {
    /// Number of sites.
    pub sites: usize,
    /// Entities per site.
    pub entities_per_site: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Update steps per transaction.
    pub steps_per_txn: usize,
    /// Probability (0..=100) that consecutive generated steps get a
    /// cross-site precedence edge.
    pub cross_edge_percent: u32,
    /// Probability (0..=100) that a generated access is a pure *read*
    /// (shared mode). Entities a transaction only reads get shared locks
    /// from `insert_locks`, so reader transactions can overlap in the
    /// simulator. `0` (the default) reproduces the paper's write-only
    /// workloads exactly — no RNG draw is made, so existing seeds are
    /// unchanged.
    pub read_percent: u32,
    /// Probability (0..=100) that a step targets site 0 — the *hot site* —
    /// instead of drawing a site uniformly. Skewed placement concentrates
    /// both contention and deadlock cycles at one site, the worst case for
    /// distributed detection (every probe chase funnels through the hot
    /// site). `0` (the default) makes no extra RNG draw, so existing seeds
    /// are unchanged.
    pub hot_site_percent: u32,
    /// Zipfian skew of the entity choice *within* a site, in `[0, 1)`:
    /// `0.0` (the default) keeps the original uniform `gen_range` draw
    /// bit-for-bit, so existing seeds are unchanged; any positive theta
    /// replaces that draw one-for-one with a [`Zipf`] rank draw (entity
    /// `e<site>_0` hottest). Same guarded-knob contract as
    /// [`WorkloadParams::read_percent`] / `hot_site_percent`.
    pub zipf_theta: f64,
    /// How to lock the transactions.
    pub strategy: LockStrategy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            sites: 2,
            entities_per_site: 3,
            transactions: 2,
            steps_per_txn: 6,
            cross_edge_percent: 30,
            read_percent: 0,
            hot_site_percent: 0,
            zipf_theta: 0.0,
            strategy: LockStrategy::Minimal,
            seed: 1,
        }
    }
}

/// Builds the database for the parameters: entities named `e<site>_<i>`.
pub fn make_database(p: &WorkloadParams) -> Database {
    let mut db = Database::new();
    for s in 0..p.sites {
        for i in 0..p.entities_per_site {
            db.add_entity(&format!("e{s}_{i}"), SiteId::from_idx(s));
        }
    }
    db
}

/// Generates one unlocked (update-only) transaction.
pub fn random_unlocked_txn(
    db: &Database,
    p: &WorkloadParams,
    name: &str,
    rng: &mut StdRng,
) -> Result<Transaction, ModelError> {
    // Choose entities; dedupe consecutive repeats per site chain is not
    // required (multiple updates of one entity are fine).
    let mut steps: Vec<Step> = Vec::new();
    let mut edges: Vec<(StepId, StepId)> = Vec::new();
    let mut last_at_site: Vec<Option<StepId>> = vec![None; p.sites];
    let mut prev: Option<StepId> = None;
    // Zeta constants once per transaction; `sample` then costs one draw.
    let zipf = (p.zipf_theta > 0.0).then(|| Zipf::new(p.entities_per_site, p.zipf_theta));
    for _ in 0..p.steps_per_txn {
        // Guarded extra draw, like `read_percent`: `hot_site_percent: 0`
        // consumes exactly the randomness it did before skew existed.
        let site = if p.hot_site_percent > 0 && rng.gen_range(0u32..100) < p.hot_site_percent {
            0
        } else {
            rng.gen_range(0..p.sites)
        };
        // Skew replaces the uniform index draw one-for-one; theta 0.0
        // makes the exact pre-skew draw, keeping seeds bit-identical.
        let idx = match &zipf {
            Some(z) => z.sample(rng),
            None => rng.gen_range(0..p.entities_per_site),
        };
        let e = db
            .entity(&format!("e{site}_{idx}"))
            .expect("generated name");
        let id = StepId::from_idx(steps.len());
        // Guard the extra draw so `read_percent: 0` consumes exactly the
        // randomness it did before reads existed (seed stability).
        let read = p.read_percent > 0 && rng.gen_range(0u32..100) < p.read_percent;
        steps.push(if read { Step::read(e) } else { Step::update(e) });
        // Per-site chain (model invariant).
        if let Some(l) = last_at_site[site] {
            edges.push((l, id));
        }
        last_at_site[site] = Some(id);
        // Occasional cross-site forward edge for data dependencies.
        if let Some(pv) = prev {
            if rng.gen_range(0u32..100) < p.cross_edge_percent {
                edges.push((pv, id));
            }
        }
        prev = Some(id);
    }
    Transaction::new(name.to_string(), steps, edges)
}

/// Generates a full locked transaction system.
pub fn random_system(p: &WorkloadParams) -> TxnSystem {
    let db = make_database(p);
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut txns = Vec::with_capacity(p.transactions);
    for t in 0..p.transactions {
        let unlocked = random_unlocked_txn(&db, p, &format!("T{}", t + 1), &mut rng)
            .expect("generated dag is acyclic");
        let locked = insert_locks(&db, &unlocked, p.strategy).expect("lockable");
        txns.push(locked);
    }
    TxnSystem::new(db, txns)
}

/// Generates a pair (convenience for the pair-safety experiments).
pub fn random_pair(p: &WorkloadParams) -> TxnSystem {
    let mut p = p.clone();
    p.transactions = 2;
    random_system(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::Level;

    #[test]
    fn generated_systems_are_well_formed() {
        for seed in 0..30 {
            for strategy in [
                LockStrategy::Minimal,
                LockStrategy::TwoPhaseSync,
                LockStrategy::TwoPhaseLoose,
            ] {
                let p = WorkloadParams {
                    seed,
                    strategy,
                    sites: 3,
                    transactions: 3,
                    ..Default::default()
                };
                let sys = random_system(&p);
                sys.validate(Level::Strict)
                    .unwrap_or_else(|e| panic!("seed {seed} {strategy:?}: {e}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = WorkloadParams::default();
        let a = random_system(&p);
        let b = random_system(&p);
        for (ta, tb) in a.txns().iter().zip(b.txns()) {
            assert_eq!(ta.steps(), tb.steps());
        }
    }

    #[test]
    fn shared_read_workloads_are_well_formed_and_run_concurrently() {
        use kplock_model::LockMode;
        for seed in 0..20 {
            let p = WorkloadParams {
                seed,
                read_percent: 60,
                sites: 2,
                entities_per_site: 3,
                transactions: 3,
                strategy: LockStrategy::TwoPhaseSync,
                ..Default::default()
            };
            let sys = random_system(&p);
            sys.validate(Level::Strict).unwrap();
            // Locks agree with access modes: shared iff no write on the
            // entity in that transaction.
            for t in sys.txns() {
                for &e in &t.locked_entities() {
                    let writes = t.steps().iter().any(|s| {
                        s.entity == e
                            && s.kind == kplock_model::ActionKind::Update
                            && s.mode == LockMode::Exclusive
                    });
                    let lock_mode = t.step(t.lock_step(e).unwrap()).mode;
                    let expect = if writes {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    assert_eq!(lock_mode, expect, "seed {seed} entity {e}");
                }
            }
            // And the simulator accepts them: committed runs audit clean
            // (sync-2PL is safe regardless of modes).
            let r = kplock_sim::run(&sys, &kplock_sim::SimConfig::default()).expect("valid config");
            assert!(r.finished());
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable, "seed {seed}");
        }
    }

    #[test]
    fn zero_read_percent_consumes_no_extra_randomness() {
        // The same seed must generate the same system whether or not the
        // read knob exists — pinned by comparing against read_percent: 0
        // being the Default.
        let base = random_system(&WorkloadParams::default());
        let explicit = random_system(&WorkloadParams {
            read_percent: 0,
            ..Default::default()
        });
        for (a, b) in base.txns().iter().zip(explicit.txns()) {
            assert_eq!(a.steps(), b.steps());
        }
    }

    #[test]
    fn zero_zipf_theta_is_seed_identical_to_base() {
        // The skew knob follows the guarded-draw contract: disabled, it
        // makes no draw, so the generated system is bit-identical.
        let base = random_system(&WorkloadParams::default());
        let explicit = random_system(&WorkloadParams {
            zipf_theta: 0.0,
            ..Default::default()
        });
        for (a, b) in base.txns().iter().zip(explicit.txns()) {
            assert_eq!(a.steps(), b.steps());
        }
    }

    #[test]
    fn zipf_skew_concentrates_accesses_on_low_indices() {
        let p = WorkloadParams {
            zipf_theta: 0.95,
            sites: 1,
            entities_per_site: 64,
            transactions: 20,
            steps_per_txn: 16,
            strategy: LockStrategy::TwoPhaseSync,
            seed: 11,
            ..Default::default()
        };
        let sys = random_system(&p);
        sys.validate(Level::Strict).unwrap();
        let hot = sys.db().entity("e0_0").unwrap();
        let hot_hits: usize = sys
            .txns()
            .iter()
            .flat_map(|t| t.steps())
            .filter(|s| s.kind == kplock_model::ActionKind::Update && s.entity == hot)
            .count();
        let total = 20 * 16;
        // Uniform would put ~1/64 of accesses on e0_0; theta 0.95 puts a
        // large multiple of that there.
        assert!(
            hot_hits * 64 > total * 5,
            "expected heavy skew onto e0_0, got {hot_hits}/{total}"
        );
    }

    #[test]
    fn respects_step_count() {
        let p = WorkloadParams {
            steps_per_txn: 10,
            strategy: LockStrategy::Minimal,
            ..Default::default()
        };
        let sys = random_system(&p);
        for t in sys.txns() {
            let updates = t
                .steps()
                .iter()
                .filter(|s| s.kind == kplock_model::ActionKind::Update)
                .count();
            assert_eq!(updates, 10);
        }
    }
}
