//! Multi-granularity locking policy over the two-level entity hierarchy.
//!
//! A transaction touching records under a file can lock each record
//! individually (announcing itself at the file with an *intention* mode),
//! or lock the whole file coarsely and skip the per-record locks. The
//! [`Granularity`] policy decides between them by **count-triggered
//! escalation**: once a transaction touches at least
//! `escalation_threshold` children of one parent, the per-child locks are
//! traded for one coarse parent lock. [`plan_parent`] is the pure decision
//! function; [`child_mode_under`] says which child locks (if any) are
//! still required under the chosen parent mode, via
//! [`LockMode::shields_child`].
//!
//! The planner is deliberately mode-complete: read-only fans escalate to
//! `S`, write fans to `X`, and a scan-all-update-few pattern lands on
//! `SIX` (read coverage from `S`, per-child `X` locks announced by the
//! `IX` half) — so every row of the compatibility matrix is reachable
//! from real workloads.

use crate::action::LockMode;

/// Lock-granularity policy for a hierarchical database.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Granularity {
    /// Ignore parent links: lock every entity directly, as a flat database
    /// would. The default; bit-identical to the pre-hierarchy behavior.
    #[default]
    Flat,
    /// Two-level locking: intention locks at parents, real locks at
    /// children, escalating to a coarse parent lock once a transaction
    /// touches `escalation_threshold` or more children of one parent.
    Hierarchical {
        /// Touched-child count at which per-child locking escalates to one
        /// coarse parent lock. `u32::MAX` disables escalation.
        escalation_threshold: u32,
    },
}

impl Granularity {
    /// True when parent links participate in locking.
    pub fn is_hierarchical(self) -> bool {
        matches!(self, Granularity::Hierarchical { .. })
    }

    /// The escalation threshold, if hierarchical.
    pub fn escalation_threshold(self) -> Option<u32> {
        match self {
            Granularity::Flat => None,
            Granularity::Hierarchical {
                escalation_threshold,
            } => Some(escalation_threshold),
        }
    }
}

/// Which child locks a transaction still needs under its parent lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildLocks {
    /// Every touched child is locked individually (`S` reads, `X` writes).
    All,
    /// Only written children are locked (`X`); the parent mode's shared
    /// half already covers the reads.
    WritesOnly,
    /// No child locks: the parent lock is coarse and shields everything.
    None,
}

/// A transaction's locking plan at one parent: the parent-lock mode and
/// which child locks remain necessary under it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParentPlan {
    /// Mode to request on the parent entity.
    pub parent_mode: LockMode,
    /// Child locks still required under that parent mode.
    pub child_locks: ChildLocks,
}

/// Plans the parent lock for a transaction that reads `reads` and writes
/// `writes` distinct children of one parent, escalating at `threshold`
/// touched children.
///
/// * below threshold: `IS` (read-only) or `IX`, children locked
///   individually;
/// * at/over threshold, write-heavy (`writes ≥ threshold`): coarse `X`;
/// * at/over threshold, read-only: coarse `S`;
/// * at/over threshold with few writes (scan-and-update): `SIX` — the `S`
///   half shields the reads, the `IX` half announces per-child `X` locks.
pub fn plan_parent(reads: u32, writes: u32, threshold: u32) -> ParentPlan {
    let touched = reads.saturating_add(writes);
    if touched < threshold {
        let parent_mode = if writes > 0 {
            LockMode::IntentionExclusive
        } else {
            LockMode::IntentionShared
        };
        return ParentPlan {
            parent_mode,
            child_locks: ChildLocks::All,
        };
    }
    if writes == 0 {
        ParentPlan {
            parent_mode: LockMode::Shared,
            child_locks: ChildLocks::None,
        }
    } else if writes >= threshold {
        ParentPlan {
            parent_mode: LockMode::Exclusive,
            child_locks: ChildLocks::None,
        }
    } else {
        ParentPlan {
            parent_mode: LockMode::SharedIntentionExclusive,
            child_locks: ChildLocks::WritesOnly,
        }
    }
}

/// The child-lock mode still required for an access of mode `access`
/// (`Shared` read / `Exclusive` write) under a parent held in
/// `parent_mode` — `None` when the parent lock already shields it.
pub fn child_mode_under(parent_mode: LockMode, access: LockMode) -> Option<LockMode> {
    if parent_mode.shields_child(access) {
        None
    } else {
        Some(access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    #[test]
    fn granularity_accessors() {
        assert!(!Granularity::Flat.is_hierarchical());
        assert_eq!(Granularity::Flat.escalation_threshold(), None);
        let g = Granularity::Hierarchical {
            escalation_threshold: 8,
        };
        assert!(g.is_hierarchical());
        assert_eq!(g.escalation_threshold(), Some(8));
        assert_eq!(Granularity::default(), Granularity::Flat);
    }

    #[test]
    fn plans_cover_every_parent_mode() {
        // Below threshold: intention modes, all children locked.
        assert_eq!(
            plan_parent(3, 0, 8),
            ParentPlan {
                parent_mode: IntentionShared,
                child_locks: ChildLocks::All
            }
        );
        assert_eq!(
            plan_parent(2, 1, 8),
            ParentPlan {
                parent_mode: IntentionExclusive,
                child_locks: ChildLocks::All
            }
        );
        // Escalated: coarse S / X, no child locks.
        assert_eq!(
            plan_parent(8, 0, 8),
            ParentPlan {
                parent_mode: Shared,
                child_locks: ChildLocks::None
            }
        );
        assert_eq!(
            plan_parent(0, 8, 8),
            ParentPlan {
                parent_mode: Exclusive,
                child_locks: ChildLocks::None
            }
        );
        // Scan-and-update-few: SIX, only the writes keep child locks.
        assert_eq!(
            plan_parent(10, 2, 8),
            ParentPlan {
                parent_mode: SharedIntentionExclusive,
                child_locks: ChildLocks::WritesOnly
            }
        );
        // MAX threshold disables escalation entirely.
        assert_eq!(
            plan_parent(1_000_000, 1_000_000, u32::MAX).parent_mode,
            IntentionExclusive
        );
    }

    #[test]
    fn child_modes_follow_shielding() {
        // Intention parents shield nothing.
        assert_eq!(child_mode_under(IntentionShared, Shared), Some(Shared));
        assert_eq!(
            child_mode_under(IntentionExclusive, Exclusive),
            Some(Exclusive)
        );
        // S and SIX shield reads but not writes.
        assert_eq!(child_mode_under(Shared, Shared), None);
        assert_eq!(child_mode_under(SharedIntentionExclusive, Shared), None);
        assert_eq!(
            child_mode_under(SharedIntentionExclusive, Exclusive),
            Some(Exclusive)
        );
        // X shields everything.
        assert_eq!(child_mode_under(Exclusive, Shared), None);
        assert_eq!(child_mode_under(Exclusive, Exclusive), None);
    }

    #[test]
    fn plan_is_self_consistent() {
        // Whatever the plan, every access it leaves unlocked must be
        // shielded, and every access it locks must not need the lock twice.
        for reads in 0..12u32 {
            for writes in 0..12u32 {
                let p = plan_parent(reads, writes, 8);
                match p.child_locks {
                    ChildLocks::None => {
                        assert!(p.parent_mode.shields_child(Shared) || reads == 0);
                        assert!(p.parent_mode.shields_child(Exclusive) || writes == 0);
                    }
                    ChildLocks::WritesOnly => {
                        assert!(p.parent_mode.shields_child(Shared) || reads == 0);
                        assert!(!p.parent_mode.shields_child(Exclusive));
                    }
                    ChildLocks::All => {
                        assert!(!p.parent_mode.shields_child(Shared) || reads == 0);
                        assert!(!p.parent_mode.shields_child(Exclusive));
                    }
                }
            }
        }
    }
}
