//! Ergonomic construction of distributed transactions.
//!
//! The builder maintains the paper's structural invariant automatically:
//! *steps touching entities stored at the same site are totally ordered*, in
//! insertion order. Cross-site precedences are added explicitly with
//! [`TxnBuilder::edge`] or implicitly by [`TxnBuilder::chain`].

use crate::action::{LockMode, Step};
use crate::entity::Database;
use crate::error::ModelError;
use crate::ids::{SiteId, StepId};
use crate::txn::Transaction;
use std::collections::HashMap;

/// Builder for [`Transaction`]s over a fixed [`Database`].
pub struct TxnBuilder<'a> {
    db: &'a Database,
    name: String,
    steps: Vec<Step>,
    edges: Vec<(StepId, StepId)>,
    last_at_site: HashMap<SiteId, StepId>,
}

impl<'a> TxnBuilder<'a> {
    /// Starts building a transaction named `name`.
    pub fn new(db: &'a Database, name: impl Into<String>) -> Self {
        TxnBuilder {
            db,
            name: name.into(),
            steps: Vec::new(),
            edges: Vec::new(),
            last_at_site: HashMap::new(),
        }
    }

    /// Appends a step. Automatically chains it after the previous step at
    /// the same site (per-site total order).
    pub fn push(&mut self, step: Step) -> StepId {
        let id = StepId::from_idx(self.steps.len());
        let site = self.db.site_of(step.entity);
        if let Some(&prev) = self.last_at_site.get(&site) {
            self.edges.push((prev, id));
        }
        self.last_at_site.insert(site, id);
        self.steps.push(step);
        id
    }

    /// Appends `lock name`.
    pub fn lock(&mut self, name: &str) -> Result<StepId, ModelError> {
        Ok(self.push(Step::lock(self.db.entity(name)?)))
    }

    /// Appends a shared (read) `lock name`.
    pub fn lock_shared(&mut self, name: &str) -> Result<StepId, ModelError> {
        Ok(self.push(Step::lock_shared(self.db.entity(name)?)))
    }

    /// Appends `lock name` in an explicit mode — the way to take intention
    /// (`IS`/`IX`/`SIX`) locks on hierarchy parents.
    pub fn lock_mode(&mut self, name: &str, mode: LockMode) -> Result<StepId, ModelError> {
        Ok(self.push(Step::lock(self.db.entity(name)?).with_mode(mode)))
    }

    /// Appends `update name`.
    pub fn update(&mut self, name: &str) -> Result<StepId, ModelError> {
        Ok(self.push(Step::update(self.db.entity(name)?)))
    }

    /// Appends a pure read of `name` (a shared-mode update).
    pub fn read(&mut self, name: &str) -> Result<StepId, ModelError> {
        Ok(self.push(Step::read(self.db.entity(name)?)))
    }

    /// Appends `unlock name`.
    pub fn unlock(&mut self, name: &str) -> Result<StepId, ModelError> {
        Ok(self.push(Step::unlock(self.db.entity(name)?)))
    }

    /// Adds an explicit precedence `a ≺ b` (typically cross-site).
    pub fn edge(&mut self, a: StepId, b: StepId) -> &mut Self {
        self.edges.push((a, b));
        self
    }

    /// Appends a totally ordered run of steps (consecutive pairs get edges,
    /// in addition to the automatic per-site chaining). Returns the ids.
    pub fn chain(&mut self, steps: impl IntoIterator<Item = Step>) -> Vec<StepId> {
        let ids: Vec<StepId> = steps.into_iter().map(|s| self.push(s)).collect();
        for w in ids.windows(2) {
            self.edges.push((w[0], w[1]));
        }
        ids
    }

    /// Appends a totally ordered run described by a script such as
    /// `"Lx Ly x y Ux Uy Lz z Uz"`: `L<e>` locks, `U<e>` unlocks and a bare
    /// entity name updates; `SL<e>` takes a shared lock and `r<e>` reads
    /// (shared-mode update). Entity names must exist in the database; a
    /// name starting with `L`/`U` is parsed as that action first and as
    /// an update only if the suffix is not a known entity, while an exact
    /// entity name wins over the `SL` and `r` prefixes (so pre-existing
    /// `SL…`/`r…`-named entities keep their meaning).
    pub fn script(&mut self, script: &str) -> Result<Vec<StepId>, ModelError> {
        let mut steps = Vec::new();
        for tok in script.split_whitespace() {
            steps.push(self.parse_token(tok)?);
        }
        Ok(self.chain(steps))
    }

    fn parse_token(&self, tok: &str) -> Result<Step, ModelError> {
        // `L`/`U` prefixes keep their original precedence over exact
        // entity names. The `SL`/`r` prefixes are newer; an exact entity
        // name wins over them, so pre-existing scripts whose entity names
        // happen to start with "SL" or "r" do not change meaning.
        if let Some(rest) = tok.strip_prefix('L') {
            if let Ok(e) = self.db.entity(rest) {
                return Ok(Step::lock(e));
            }
        }
        if let Some(rest) = tok.strip_prefix('U') {
            if let Ok(e) = self.db.entity(rest) {
                return Ok(Step::unlock(e));
            }
        }
        if let Ok(e) = self.db.entity(tok) {
            return Ok(Step::update(e));
        }
        if let Some(rest) = tok.strip_prefix("SL") {
            if let Ok(e) = self.db.entity(rest) {
                return Ok(Step::lock_shared(e));
            }
        }
        if let Some(rest) = tok.strip_prefix('r') {
            if let Ok(e) = self.db.entity(rest) {
                return Ok(Step::read(e));
            }
        }
        Err(self.db.entity(tok).unwrap_err())
    }

    /// Finishes building. Checks acyclicity (site totality holds by
    /// construction); full well-formedness checks live in `crate::validate`.
    pub fn build(self) -> Result<Transaction, ModelError> {
        Transaction::new(self.name, self.steps, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionKind;

    fn db() -> Database {
        Database::from_spec(&[("x", 0), ("y", 0), ("w", 1), ("z", 1)])
    }

    #[test]
    fn auto_chains_per_site() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T1");
        let lx = b.lock("x").unwrap();
        let lw = b.lock("w").unwrap(); // other site: no edge to lx
        let ux = b.unlock("x").unwrap(); // same site as lx: chained
        let t = b.build().unwrap();
        assert!(t.precedes(lx, ux));
        assert!(t.concurrent(lx, lw));
        assert!(t.concurrent(lw, ux));
    }

    #[test]
    fn script_parses_paper_notation() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "t1");
        let ids = b.script("Lx Ly x y Ux Uy Lz z Uz").unwrap();
        let t = b.build().unwrap();
        assert_eq!(ids.len(), 9);
        assert!(t.is_total_order());
        assert_eq!(t.step(ids[0]).kind, ActionKind::Lock);
        assert_eq!(t.step(ids[2]).kind, ActionKind::Update);
        assert_eq!(t.step(ids[8]).kind, ActionKind::Unlock);
        assert_eq!(db.name_of(t.step(ids[8]).entity), "z");
    }

    #[test]
    fn cross_site_edges() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        let lx = b.lock("x").unwrap();
        let lz = b.lock("z").unwrap();
        b.edge(lx, lz);
        let t = b.build().unwrap();
        assert!(t.precedes(lx, lz));
    }

    #[test]
    fn script_unknown_entity_fails() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        assert!(b.script("Lq").is_err());
    }

    #[test]
    fn script_parses_shared_tokens() {
        use crate::action::LockMode;
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        let ids = b.script("SLx rx Ux").unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.step(ids[0]).kind, ActionKind::Lock);
        assert_eq!(t.step(ids[0]).mode, LockMode::Shared);
        assert_eq!(t.step(ids[1]).kind, ActionKind::Update);
        assert_eq!(t.step(ids[1]).mode, LockMode::Shared);
        assert_eq!(t.step(ids[2]).kind, ActionKind::Unlock);
    }

    #[test]
    fn exact_entity_name_beats_new_prefixes() {
        use crate::action::LockMode;
        let db = Database::from_spec(&[("ry", 0), ("y", 0), ("SLy", 0)]);
        let mut b = TxnBuilder::new(&db, "T");
        let ids = b.script("ry SLy").unwrap();
        let t = b.build().unwrap();
        // "ry" and "SLy" are entities: parsed as their (exclusive)
        // updates, not as a shared read / shared lock of "y".
        assert_eq!(db.name_of(t.step(ids[0]).entity), "ry");
        assert_eq!(t.step(ids[0]).mode, LockMode::Exclusive);
        assert_eq!(db.name_of(t.step(ids[1]).entity), "SLy");
        assert_eq!(t.step(ids[1]).kind, ActionKind::Update);
    }
}
