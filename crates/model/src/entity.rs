//! The distributed database: entities partitioned into sites.
//!
//! A distributed database is the paper's triple `D = (E, m, σ)`: a set of
//! entities, a number of sites, and the *stored-at* function `σ : E → sites`.
//!
//! Entities may optionally form a **two-level hierarchy**: an entity can
//! declare one parent (a file/relation over its records), and intention
//! modes ([`crate::LockMode`]) on the parent then announce fine-grained
//! locks below it. Flat databases — every constructor except
//! [`Database::add_child`] — have no parent links and behave exactly as
//! before.

use crate::error::ModelError;
use crate::ids::{EntityId, SiteId};
use std::collections::HashMap;

/// A distributed database schema: named entities, each stored at one site,
/// optionally arranged in a two-level parent/child hierarchy.
#[derive(Clone, Debug, Default)]
pub struct Database {
    names: Vec<String>,
    sites: Vec<SiteId>,
    parents: Vec<Option<EntityId>>,
    children: HashMap<EntityId, Vec<EntityId>>,
    by_name: HashMap<String, EntityId>,
    site_count: usize,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new entity `name` stored at `site`.
    ///
    /// # Panics
    /// Panics if the name is already registered (schema bugs should fail
    /// loudly at construction time).
    pub fn add_entity(&mut self, name: &str, site: SiteId) -> EntityId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate entity name {name:?}"
        );
        let id = EntityId::from_idx(self.names.len());
        self.names.push(name.to_string());
        self.sites.push(site);
        self.parents.push(None);
        self.by_name.insert(name.to_string(), id);
        self.site_count = self.site_count.max(site.idx() + 1);
        id
    }

    /// Registers a new entity `name` stored at `site` as a child of
    /// `parent`, making the database hierarchical.
    ///
    /// # Panics
    /// Panics on a duplicate name, an unknown parent, or a parent that is
    /// itself a child (the hierarchy is two-level by construction).
    pub fn add_child(&mut self, name: &str, site: SiteId, parent: EntityId) -> EntityId {
        assert!(parent.idx() < self.names.len(), "unknown parent {parent}");
        assert!(
            self.parents[parent.idx()].is_none(),
            "parent {parent} is itself a child; the hierarchy is two-level"
        );
        let id = self.add_entity(name, site);
        self.parents[id.idx()] = Some(parent);
        self.children.entry(parent).or_default().push(id);
        id
    }

    /// The paper's stored-at function `σ`.
    pub fn site_of(&self, e: EntityId) -> SiteId {
        self.sites[e.idx()]
    }

    /// The entity's parent, if the database is hierarchical and `e` is a
    /// child.
    pub fn parent_of(&self, e: EntityId) -> Option<EntityId> {
        self.parents[e.idx()]
    }

    /// The children of `p`, in registration order (empty for leaves and for
    /// flat databases).
    pub fn children_of(&self, p: EntityId) -> &[EntityId] {
        self.children.get(&p).map_or(&[], Vec::as_slice)
    }

    /// Number of children under `p`.
    pub fn child_count(&self, p: EntityId) -> usize {
        self.children.get(&p).map_or(0, Vec::len)
    }

    /// True when any entity declares a parent.
    pub fn is_hierarchical(&self) -> bool {
        !self.children.is_empty()
    }

    /// Entity name for display.
    pub fn name_of(&self, e: EntityId) -> &str {
        &self.names[e.idx()]
    }

    /// Looks an entity up by name.
    pub fn entity(&self, name: &str) -> Result<EntityId, ModelError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownEntity(name.to_string()))
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.names.len()
    }

    /// Number of sites (`m`): 1 + the largest site index used.
    pub fn site_count(&self) -> usize {
        self.site_count
    }

    /// All entities stored at `site`.
    pub fn entities_at(&self, site: SiteId) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entity_count())
            .map(EntityId::from_idx)
            .filter(move |&e| self.site_of(e) == site)
    }

    /// Iterates over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entity_count()).map(EntityId::from_idx)
    }

    /// Convenience constructor: `Database::from_spec(&[("x", 0), ("y", 1)])`.
    pub fn from_spec(spec: &[(&str, usize)]) -> Self {
        let mut db = Database::new();
        for &(name, site) in spec {
            db.add_entity(name, SiteId::from_idx(site));
        }
        db
    }

    /// A centralized (single-site) database over the given entity names.
    pub fn centralized(names: &[&str]) -> Self {
        let mut db = Database::new();
        for name in names {
            db.add_entity(name, SiteId(0));
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        let x = db.add_entity("x", SiteId(0));
        let y = db.add_entity("y", SiteId(1));
        assert_eq!(db.entity("x").unwrap(), x);
        assert_eq!(db.site_of(y), SiteId(1));
        assert_eq!(db.name_of(x), "x");
        assert_eq!(db.entity_count(), 2);
        assert_eq!(db.site_count(), 2);
        assert!(db.entity("z").is_err());
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let mut db = Database::new();
        db.add_entity("x", SiteId(0));
        db.add_entity("x", SiteId(1));
    }

    #[test]
    fn entities_at_site() {
        let db = Database::from_spec(&[("x", 0), ("y", 1), ("z", 0)]);
        let at0: Vec<_> = db.entities_at(SiteId(0)).collect();
        assert_eq!(at0.len(), 2);
        assert_eq!(db.site_count(), 2);
    }

    #[test]
    fn two_level_hierarchy() {
        let mut db = Database::new();
        let f = db.add_entity("f", SiteId(0));
        let r0 = db.add_child("f/0", SiteId(0), f);
        let r1 = db.add_child("f/1", SiteId(0), f);
        assert!(db.is_hierarchical());
        assert_eq!(db.parent_of(f), None);
        assert_eq!(db.parent_of(r0), Some(f));
        assert_eq!(db.children_of(f), &[r0, r1]);
        assert_eq!(db.child_count(f), 2);
        assert_eq!(db.child_count(r0), 0);
        assert!(!Database::from_spec(&[("x", 0)]).is_hierarchical());
    }

    #[test]
    #[should_panic(expected = "two-level")]
    fn three_level_hierarchy_rejected() {
        let mut db = Database::new();
        let f = db.add_entity("f", SiteId(0));
        let r = db.add_child("f/0", SiteId(0), f);
        db.add_child("f/0/0", SiteId(0), r);
    }

    #[test]
    fn centralized_uses_one_site() {
        let db = Database::centralized(&["x", "y", "z"]);
        assert_eq!(db.site_count(), 1);
        assert!(db.entities().all(|e| db.site_of(e) == SiteId(0)));
    }
}
