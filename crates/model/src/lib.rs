//! Data model for the `kplock` workspace: the paper's Section 2.
//!
//! A *distributed database* partitions entities into sites; a *transaction*
//! is a partially ordered set of lock/update/unlock steps that is totally
//! ordered at each site; a *schedule* is a legal interleaving; a system is
//! *safe* when all its schedules are serializable. This crate defines those
//! objects, their well-formedness rules, and conflict-serializability of
//! schedules; the safety algorithms themselves live in `kplock-core`.
//!
//! # Example
//!
//! Build the paper's classic non-two-phase pair from scripts and check the
//! model-level facts directly:
//!
//! ```
//! use kplock_model::{ActionKind, Database, Level, LockMode, TxnBuilder};
//!
//! let db = Database::from_spec(&[("x", 0), ("y", 1)]); // x at site 0, y at site 1
//! let mut b = TxnBuilder::new(&db, "T1");
//! let ids = b.script("Lx x Ux SLy ry Uy").unwrap(); // exclusive x, shared (read) y
//! let t = b.build().unwrap();
//!
//! assert_eq!(t.step(ids[0]).kind, ActionKind::Lock);
//! assert_eq!(t.step(ids[3]).mode, LockMode::Shared);
//! assert!(t.precedes(ids[0], ids[2])); // Lx before Ux: scripts are chains
//! kplock_model::validate(&db, &t, Level::Strict).unwrap(); // well-locked
//! ```

pub mod action;
pub mod builder;
pub mod display;
pub mod entity;
pub mod error;
pub mod extensions;
pub mod hierarchy;
pub mod ids;
pub mod projection;
pub mod schedule;
pub mod serializability;
pub mod system;
pub mod txn;
pub mod validate;

pub use action::{ActionKind, LockMode, Step};
pub use builder::TxnBuilder;
pub use entity::Database;
pub use error::ModelError;
pub use extensions::{count_linear_extensions, linear_extensions, LinearExtensions};
pub use hierarchy::{child_mode_under, plan_parent, ChildLocks, Granularity, ParentPlan};
pub use ids::{EntityId, SiteId, StepId, TxnId};
pub use projection::{projection_respects_site_orders, schedule_at_site, txn_site_order};
pub use schedule::{Schedule, ScheduledStep};
pub use serializability::{equivalent_serial_order, is_serializable, serialization_graph};
pub use system::TxnSystem;
pub use txn::Transaction;
pub use validate::{validate, Level};
