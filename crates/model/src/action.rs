//! Transaction steps: lock, unlock and update actions on entities.

use crate::ids::EntityId;
use std::fmt;

/// The kind of a transaction step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActionKind {
    /// `lock x`: obtain access to an entity (exclusive in the paper's
    /// model; see [`LockMode`] for the shared generalization).
    Lock,
    /// `update x`: the paper's indivisible read-then-write of an entity.
    Update,
    /// `unlock x`: give up access to an entity.
    Unlock,
}

/// Access mode of a step — the reader–writer generalization of the paper's
/// exclusive-only locks.
///
/// The paper's model has a single lock mode (every update is a
/// read-then-write, so every lock is a write lock). Production lock
/// managers distinguish *shared* (read) from *exclusive* (write) access:
/// any number of shared holders may coexist, an exclusive holder excludes
/// everyone else. [`Compatibility`](LockMode::compatible_with) is the
/// standard S/X matrix.
///
/// On a [`ActionKind::Lock`] step the mode is the lock mode requested; on
/// an [`ActionKind::Update`] step `Shared` marks a pure read (no write) —
/// two `Shared` accesses of the same entity do not conflict for
/// serializability. `Unlock` steps carry a mode for uniformity, but it is
/// ignored. The default everywhere is [`LockMode::Exclusive`], which makes
/// every paper-model construction behave exactly as before the modes were
/// introduced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Read access: compatible with other shared holders.
    Shared,
    /// Read-write access: compatible with nothing.
    #[default]
    Exclusive,
}

impl LockMode {
    /// The S/X compatibility matrix: two modes are compatible iff both are
    /// [`LockMode::Shared`].
    pub fn compatible_with(self, other: LockMode) -> bool {
        self == LockMode::Shared && other == LockMode::Shared
    }

    /// True iff holding `self` already grants everything `req` asks for
    /// (`X` covers `S` and `X`; `S` covers only `S`).
    pub fn covers(self, req: LockMode) -> bool {
        self == LockMode::Exclusive || req == LockMode::Shared
    }

    /// True for a write (exclusive) access.
    pub fn is_write(self) -> bool {
        self == LockMode::Exclusive
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => write!(f, "S"),
            LockMode::Exclusive => write!(f, "X"),
        }
    }
}

/// A single step of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    /// What the step does.
    pub kind: ActionKind,
    /// The entity it does it to (the paper's modifies function `e`).
    pub entity: EntityId,
    /// Access mode (see [`LockMode`]; [`LockMode::Exclusive`] reproduces
    /// the paper's model exactly).
    pub mode: LockMode,
}

impl Step {
    /// `lock e` (exclusive, the paper's lock).
    pub fn lock(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Lock,
            entity,
            mode: LockMode::Exclusive,
        }
    }

    /// `slock e`: a shared (read) lock.
    pub fn lock_shared(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Lock,
            entity,
            mode: LockMode::Shared,
        }
    }

    /// `update e` (read-then-write, the paper's update).
    pub fn update(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Update,
            entity,
            mode: LockMode::Exclusive,
        }
    }

    /// `read e`: a pure read of an entity (a [`LockMode::Shared`] update).
    pub fn read(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Update,
            entity,
            mode: LockMode::Shared,
        }
    }

    /// `unlock e`.
    pub fn unlock(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Unlock,
            entity,
            mode: LockMode::Exclusive,
        }
    }

    /// The same step with `mode` replaced.
    pub fn with_mode(self, mode: LockMode) -> Step {
        Step { mode, ..self }
    }

    /// Paper-style label, e.g. `Lx`, `Ux` or `x`, given the entity's name;
    /// shared-mode steps get an `S`/`r` marker (`SLx`, `rx`).
    pub fn label(&self, entity_name: &str) -> String {
        match (self.kind, self.mode) {
            (ActionKind::Lock, LockMode::Exclusive) => format!("L{entity_name}"),
            (ActionKind::Lock, LockMode::Shared) => format!("SL{entity_name}"),
            (ActionKind::Unlock, _) => format!("U{entity_name}"),
            (ActionKind::Update, LockMode::Exclusive) => entity_name.to_string(),
            (ActionKind::Update, LockMode::Shared) => format!("r{entity_name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_labels() {
        let e = EntityId(0);
        assert_eq!(Step::lock(e).kind, ActionKind::Lock);
        assert_eq!(Step::update(e).kind, ActionKind::Update);
        assert_eq!(Step::unlock(e).kind, ActionKind::Unlock);
        assert_eq!(Step::lock(e).label("x"), "Lx");
        assert_eq!(Step::unlock(e).label("x"), "Ux");
        assert_eq!(Step::update(e).label("x"), "x");
    }

    #[test]
    fn default_mode_is_exclusive() {
        let e = EntityId(0);
        for s in [Step::lock(e), Step::update(e), Step::unlock(e)] {
            assert_eq!(s.mode, LockMode::Exclusive);
        }
        assert_eq!(LockMode::default(), LockMode::Exclusive);
    }

    #[test]
    fn shared_constructors_and_labels() {
        let e = EntityId(0);
        assert_eq!(Step::lock_shared(e).mode, LockMode::Shared);
        assert_eq!(Step::lock_shared(e).kind, ActionKind::Lock);
        assert_eq!(Step::read(e).mode, LockMode::Shared);
        assert_eq!(Step::read(e).kind, ActionKind::Update);
        assert_eq!(Step::lock_shared(e).label("x"), "SLx");
        assert_eq!(Step::read(e).label("x"), "rx");
        assert_eq!(
            Step::lock(e).with_mode(LockMode::Shared),
            Step::lock_shared(e)
        );
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible_with(Shared));
        assert!(!Shared.compatible_with(Exclusive));
        assert!(!Exclusive.compatible_with(Shared));
        assert!(!Exclusive.compatible_with(Exclusive));
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(Exclusive));
        assert!(Shared.covers(Shared));
        assert!(!Shared.covers(Exclusive));
        assert!(Exclusive.is_write());
        assert!(!Shared.is_write());
        assert_eq!(format!("{Shared}/{Exclusive}"), "S/X");
    }
}
