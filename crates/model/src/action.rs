//! Transaction steps: lock, unlock and update actions on entities.

use crate::ids::EntityId;

/// The kind of a transaction step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActionKind {
    /// `lock x`: obtain exclusive access to an entity.
    Lock,
    /// `update x`: the paper's indivisible read-then-write of an entity.
    Update,
    /// `unlock x`: give up exclusive access to an entity.
    Unlock,
}

/// A single step of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    /// What the step does.
    pub kind: ActionKind,
    /// The entity it does it to (the paper's modifies function `e`).
    pub entity: EntityId,
}

impl Step {
    /// `lock e`.
    pub fn lock(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Lock,
            entity,
        }
    }

    /// `update e`.
    pub fn update(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Update,
            entity,
        }
    }

    /// `unlock e`.
    pub fn unlock(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Unlock,
            entity,
        }
    }

    /// Paper-style label, e.g. `Lx`, `Ux` or `x`, given the entity's name.
    pub fn label(&self, entity_name: &str) -> String {
        match self.kind {
            ActionKind::Lock => format!("L{entity_name}"),
            ActionKind::Unlock => format!("U{entity_name}"),
            ActionKind::Update => entity_name.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_labels() {
        let e = EntityId(0);
        assert_eq!(Step::lock(e).kind, ActionKind::Lock);
        assert_eq!(Step::update(e).kind, ActionKind::Update);
        assert_eq!(Step::unlock(e).kind, ActionKind::Unlock);
        assert_eq!(Step::lock(e).label("x"), "Lx");
        assert_eq!(Step::unlock(e).label("x"), "Ux");
        assert_eq!(Step::update(e).label("x"), "x");
    }
}
