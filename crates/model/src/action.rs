//! Transaction steps: lock, unlock and update actions on entities.

use crate::ids::EntityId;
use std::fmt;

/// The kind of a transaction step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActionKind {
    /// `lock x`: obtain access to an entity (exclusive in the paper's
    /// model; see [`LockMode`] for the shared generalization).
    Lock,
    /// `update x`: the paper's indivisible read-then-write of an entity.
    Update,
    /// `unlock x`: give up access to an entity.
    Unlock,
}

/// Access mode of a step — the multi-granularity generalization of the
/// paper's exclusive-only locks.
///
/// The paper's model has a single lock mode (every update is a
/// read-then-write, so every lock is a write lock). Production lock
/// managers distinguish *shared* (read) from *exclusive* (write) access,
/// and hierarchical (multi-granularity) managers add *intention* modes
/// taken on an ancestor before explicit child locks: the classical
/// five-mode lattice
///
/// ```text
///            X
///            |
///           SIX
///          /   \
///         S     IX
///          \   /
///           IS
/// ```
///
/// where `IS`/`IX` announce explicit shared/exclusive locks further down
/// the hierarchy, `S`/`X` grant read/write access to the whole subtree,
/// and `SIX = S ∨ IX` reads the whole subtree while writing selected
/// children under explicit `X` locks. Every mode question routes through
/// **one** compatibility matrix ([`LockMode::compatible_with`]) plus the
/// lattice join ([`LockMode::join`]); [`LockMode::covers`] is the induced
/// partial order (`a covers b ⇔ a ∨ b = a`), so none of the layers above
/// can drift from the matrix.
///
/// On a [`ActionKind::Lock`] step the mode is the lock mode requested; on
/// an [`ActionKind::Update`] step `Shared` marks a pure read (no write) —
/// two `Shared` accesses of the same entity do not conflict for
/// serializability (updates only ever carry `S`/`X`; intention modes
/// appear on lock/unlock steps). `Unlock` steps carry a mode for
/// uniformity, but it is ignored. The default everywhere is
/// [`LockMode::Exclusive`], which makes every paper-model construction
/// behave exactly as before the modes were introduced.
///
/// The derive-`Ord` variant order is *not* the lattice order (`IX` and
/// `S` are lattice-incomparable) — it exists for sorting and map keys and
/// keeps the pre-lattice invariant `Shared < Exclusive`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Intention-shared: explicit `S`/`IS` locks will be taken on
    /// descendants. Compatible with everything but `X`.
    IntentionShared,
    /// Intention-exclusive: explicit `X` (or any) locks will be taken on
    /// descendants. Compatible with the intention modes only.
    IntentionExclusive,
    /// Read access to the whole subtree: compatible with other shared and
    /// intention-shared holders.
    Shared,
    /// `S + IX`: reads the whole subtree and will write selected
    /// descendants. Compatible with `IS` only.
    SharedIntentionExclusive,
    /// Read-write access to the whole subtree: compatible with nothing.
    #[default]
    Exclusive,
}

/// Matrix/table index of a mode (stable: the declaration order).
const fn midx(m: LockMode) -> usize {
    match m {
        LockMode::IntentionShared => 0,
        LockMode::IntentionExclusive => 1,
        LockMode::Shared => 2,
        LockMode::SharedIntentionExclusive => 3,
        LockMode::Exclusive => 4,
    }
}

/// The one compatibility matrix (symmetric): rows/columns in declaration
/// order `IS, IX, S, SIX, X`.
const COMPAT: [[bool; 5]; 5] = [
    //            IS     IX     S      SIX    X
    /* IS  */
    [true, true, true, true, false],
    /* IX  */ [true, true, false, false, false],
    /* S   */ [true, false, true, false, false],
    /* SIX */ [true, false, false, false, false],
    /* X   */ [false, false, false, false, false],
];

/// The lattice join (least upper bound); notably `IX ∨ S = SIX`.
const JOIN: [[LockMode; 5]; 5] = {
    use LockMode::{
        Exclusive as X, IntentionExclusive as IX, IntentionShared as IS, Shared as S,
        SharedIntentionExclusive as SIX,
    };
    [
        //           IS   IX   S    SIX  X
        /* IS  */ [IS, IX, S, SIX, X],
        /* IX  */ [IX, IX, SIX, SIX, X],
        /* S   */ [S, SIX, S, SIX, X],
        /* SIX */ [SIX, SIX, SIX, SIX, X],
        /* X   */ [X, X, X, X, X],
    ]
};

impl LockMode {
    /// All five modes, in declaration (matrix) order — for sweeps and
    /// property tests.
    pub const ALL: [LockMode; 5] = [
        LockMode::IntentionShared,
        LockMode::IntentionExclusive,
        LockMode::Shared,
        LockMode::SharedIntentionExclusive,
        LockMode::Exclusive,
    ];

    /// The multi-granularity compatibility matrix. Restricted to `S`/`X`
    /// this is the classical reader–writer matrix (two modes compatible
    /// iff both shared).
    pub fn compatible_with(self, other: LockMode) -> bool {
        COMPAT[midx(self)][midx(other)]
    }

    /// The lattice join (least upper bound): the weakest single mode that
    /// grants everything both operands grant. Used as the upgrade target
    /// when an owner holding `self` requests `other` — notably
    /// `IX ∨ S = SIX`, the only non-trivial join.
    pub fn join(self, other: LockMode) -> LockMode {
        JOIN[midx(self)][midx(other)]
    }

    /// True iff holding `self` already grants everything `req` asks for:
    /// the lattice partial order, derived from the join
    /// (`self ∨ req == self`). Restricted to `S`/`X` this is the old rule
    /// (`X` covers both, `S` covers only `S`).
    pub fn covers(self, req: LockMode) -> bool {
        self.join(req) == self
    }

    /// True for a mode that grants or intends writes (`X`, `SIX`, `IX`).
    /// For the `S`/`X` modes updates actually carry, this is exactly
    /// "is an exclusive access".
    pub fn is_write(self) -> bool {
        matches!(
            self,
            LockMode::Exclusive | LockMode::SharedIntentionExclusive | LockMode::IntentionExclusive
        )
    }

    /// True for the pure intention modes (`IS`, `IX`), which grant no
    /// access of their own — they only announce explicit locks below.
    pub fn is_intention(self) -> bool {
        matches!(
            self,
            LockMode::IntentionShared | LockMode::IntentionExclusive
        )
    }

    /// True iff holding `self` on a *parent* entity already covers an
    /// access of mode `access` to one of its children, with no explicit
    /// child lock: `X` covers any child access, `S` and `SIX` cover child
    /// reads (the `S` half reads the whole subtree), and the pure
    /// intention modes cover nothing — they merely announce child locks.
    pub fn shields_child(self, access: LockMode) -> bool {
        match self {
            LockMode::Exclusive => true,
            LockMode::Shared | LockMode::SharedIntentionExclusive => access == LockMode::Shared,
            LockMode::IntentionShared | LockMode::IntentionExclusive => false,
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::IntentionShared => write!(f, "IS"),
            LockMode::IntentionExclusive => write!(f, "IX"),
            LockMode::Shared => write!(f, "S"),
            LockMode::SharedIntentionExclusive => write!(f, "SIX"),
            LockMode::Exclusive => write!(f, "X"),
        }
    }
}

/// A single step of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    /// What the step does.
    pub kind: ActionKind,
    /// The entity it does it to (the paper's modifies function `e`).
    pub entity: EntityId,
    /// Access mode (see [`LockMode`]; [`LockMode::Exclusive`] reproduces
    /// the paper's model exactly).
    pub mode: LockMode,
}

impl Step {
    /// `lock e` (exclusive, the paper's lock).
    pub fn lock(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Lock,
            entity,
            mode: LockMode::Exclusive,
        }
    }

    /// `slock e`: a shared (read) lock.
    pub fn lock_shared(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Lock,
            entity,
            mode: LockMode::Shared,
        }
    }

    /// `update e` (read-then-write, the paper's update).
    pub fn update(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Update,
            entity,
            mode: LockMode::Exclusive,
        }
    }

    /// `read e`: a pure read of an entity (a [`LockMode::Shared`] update).
    pub fn read(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Update,
            entity,
            mode: LockMode::Shared,
        }
    }

    /// `unlock e`.
    pub fn unlock(entity: EntityId) -> Step {
        Step {
            kind: ActionKind::Unlock,
            entity,
            mode: LockMode::Exclusive,
        }
    }

    /// The same step with `mode` replaced.
    pub fn with_mode(self, mode: LockMode) -> Step {
        Step { mode, ..self }
    }

    /// Paper-style label, e.g. `Lx`, `Ux` or `x`, given the entity's name;
    /// shared-mode steps get an `S`/`r` marker (`SLx`, `rx`) and
    /// intention-mode locks a full mode prefix (`ISLx`, `IXLx`, `SIXLx`).
    pub fn label(&self, entity_name: &str) -> String {
        match (self.kind, self.mode) {
            (ActionKind::Lock, LockMode::Exclusive) => format!("L{entity_name}"),
            (ActionKind::Lock, LockMode::Shared) => format!("SL{entity_name}"),
            (ActionKind::Lock, m) => format!("{m}L{entity_name}"),
            (ActionKind::Unlock, _) => format!("U{entity_name}"),
            (ActionKind::Update, LockMode::Shared) => format!("r{entity_name}"),
            (ActionKind::Update, _) => entity_name.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_labels() {
        let e = EntityId(0);
        assert_eq!(Step::lock(e).kind, ActionKind::Lock);
        assert_eq!(Step::update(e).kind, ActionKind::Update);
        assert_eq!(Step::unlock(e).kind, ActionKind::Unlock);
        assert_eq!(Step::lock(e).label("x"), "Lx");
        assert_eq!(Step::unlock(e).label("x"), "Ux");
        assert_eq!(Step::update(e).label("x"), "x");
    }

    #[test]
    fn default_mode_is_exclusive() {
        let e = EntityId(0);
        for s in [Step::lock(e), Step::update(e), Step::unlock(e)] {
            assert_eq!(s.mode, LockMode::Exclusive);
        }
        assert_eq!(LockMode::default(), LockMode::Exclusive);
    }

    #[test]
    fn shared_constructors_and_labels() {
        let e = EntityId(0);
        assert_eq!(Step::lock_shared(e).mode, LockMode::Shared);
        assert_eq!(Step::lock_shared(e).kind, ActionKind::Lock);
        assert_eq!(Step::read(e).mode, LockMode::Shared);
        assert_eq!(Step::read(e).kind, ActionKind::Update);
        assert_eq!(Step::lock_shared(e).label("x"), "SLx");
        assert_eq!(Step::read(e).label("x"), "rx");
        assert_eq!(
            Step::lock(e).with_mode(LockMode::Shared),
            Step::lock_shared(e)
        );
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible_with(Shared));
        assert!(!Shared.compatible_with(Exclusive));
        assert!(!Exclusive.compatible_with(Shared));
        assert!(!Exclusive.compatible_with(Exclusive));
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(Exclusive));
        assert!(Shared.covers(Shared));
        assert!(!Shared.covers(Exclusive));
        assert!(Exclusive.is_write());
        assert!(!Shared.is_write());
        assert_eq!(format!("{Shared}/{Exclusive}"), "S/X");
    }

    #[test]
    fn intention_matrix_rows() {
        use LockMode::*;
        // IS goes with everything but X.
        for m in [
            IntentionShared,
            IntentionExclusive,
            Shared,
            SharedIntentionExclusive,
        ] {
            assert!(IntentionShared.compatible_with(m), "{m}");
        }
        assert!(!IntentionShared.compatible_with(Exclusive));
        // IX goes with the intention modes only.
        assert!(IntentionExclusive.compatible_with(IntentionExclusive));
        assert!(!IntentionExclusive.compatible_with(Shared));
        assert!(!IntentionExclusive.compatible_with(SharedIntentionExclusive));
        // SIX goes with IS only; X with nothing.
        assert!(SharedIntentionExclusive.compatible_with(IntentionShared));
        assert!(!SharedIntentionExclusive.compatible_with(SharedIntentionExclusive));
        for m in LockMode::ALL {
            assert!(!Exclusive.compatible_with(m), "{m}");
        }
    }

    #[test]
    fn join_is_the_lattice_lub() {
        use LockMode::*;
        assert_eq!(IntentionExclusive.join(Shared), SharedIntentionExclusive);
        assert_eq!(Shared.join(IntentionExclusive), SharedIntentionExclusive);
        assert_eq!(IntentionShared.join(Shared), Shared);
        assert_eq!(SharedIntentionExclusive.join(Exclusive), Exclusive);
        for m in LockMode::ALL {
            assert_eq!(m.join(m), m, "idempotent");
            assert_eq!(m.join(Exclusive), Exclusive, "X is top");
            assert_eq!(m.join(IntentionShared), m, "IS is bottom");
            assert!(m.covers(m) && m.covers(IntentionShared));
            assert!(Exclusive.covers(m));
        }
        // IX and S are incomparable.
        assert!(!IntentionExclusive.covers(Shared));
        assert!(!Shared.covers(IntentionExclusive));
    }

    #[test]
    fn intention_and_shield_predicates() {
        use LockMode::*;
        assert!(IntentionShared.is_intention() && IntentionExclusive.is_intention());
        assert!(!Shared.is_intention() && !SharedIntentionExclusive.is_intention());
        assert!(IntentionExclusive.is_write() && SharedIntentionExclusive.is_write());
        assert!(!IntentionShared.is_write());
        // Shielding: X covers any child access, S/SIX cover child reads,
        // intention modes cover nothing.
        assert!(Exclusive.shields_child(Exclusive) && Exclusive.shields_child(Shared));
        assert!(Shared.shields_child(Shared) && !Shared.shields_child(Exclusive));
        assert!(SharedIntentionExclusive.shields_child(Shared));
        assert!(!SharedIntentionExclusive.shields_child(Exclusive));
        assert!(!IntentionExclusive.shields_child(Shared));
        assert!(!IntentionShared.shields_child(Shared));
        assert_eq!(
            format!("{IntentionShared}/{IntentionExclusive}/{SharedIntentionExclusive}"),
            "IS/IX/SIX"
        );
    }

    #[test]
    fn intention_lock_labels() {
        use LockMode::*;
        let e = EntityId(0);
        assert_eq!(Step::lock(e).with_mode(IntentionShared).label("x"), "ISLx");
        assert_eq!(
            Step::lock(e).with_mode(IntentionExclusive).label("x"),
            "IXLx"
        );
        assert_eq!(
            Step::lock(e).with_mode(SharedIntentionExclusive).label("x"),
            "SIXLx"
        );
        assert_eq!(Step::unlock(e).with_mode(IntentionShared).label("x"), "Ux");
    }
}
