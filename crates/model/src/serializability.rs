//! Serializability of schedules.
//!
//! Under the paper's update interpretation (each step reads then writes its
//! entity) two schedules are equivalent iff conflicting accesses — accesses
//! of the same entity by different transactions — occur in the same order.
//! A schedule is serializable iff its *serialization graph* is acyclic.
//!
//! Lock and unlock steps carry no data flow. For well-locked transactions
//! every update is inside its lock section and lock sections on the same
//! entity never overlap in a legal schedule, so the per-entity access order
//! equals the lock-section order; this lets us also analyze the paper's
//! figure-style transactions whose update steps are elided.

use crate::action::ActionKind;
use crate::ids::{EntityId, TxnId};
use crate::schedule::Schedule;
use crate::system::TxnSystem;
use kplock_graph::DiGraph;
use std::collections::HashMap;

/// Builds the serialization graph of a (complete, legal) schedule: one node
/// per transaction, an edge `Ti -> Tj` iff some access of an entity by `Ti`
/// precedes a *conflicting* access of the same entity by `Tj`.
///
/// An *access* of entity `x` by `T` is an `update x` step; if `T` locks `x`
/// but never updates it (figure-style transactions), the lock section itself
/// counts as a single access placed at the `lock x` step — **unless** the
/// lock is an intention mode (`IS`/`IX`), which only announces finer locks
/// below `x` and touches no data itself. Two accesses of the same entity by
/// different transactions conflict unless **both** are reads
/// ([`crate::action::LockMode::Shared`]); in the paper's exclusive-only
/// model every access is a write, so every same-entity pair conflicts.
///
/// On a hierarchical database a coarse (non-intention) parent section is a
/// *direct* access of the parent, and every child update is additionally
/// mapped up to its parent as an *indirect* access there: a coarse scan of
/// a file conflicts with a record update under that file even though the
/// two transactions name no common entity. Two indirect accesses never
/// conflict with each other — their order is fixed by the child-level
/// events that produced them. On a flat database every access is direct,
/// reproducing the original construction exactly.
pub fn serialization_graph(sys: &TxnSystem, schedule: &Schedule) -> DiGraph {
    let k = sys.len();
    let mut g = DiGraph::new(k);
    // Per entity, the list of (position, txn, is_write, is_direct) events.
    let mut accesses: HashMap<EntityId, Vec<(usize, TxnId, bool, bool)>> = HashMap::new();

    for (pos, ss) in schedule.steps().iter().enumerate() {
        let txn = sys.txn(ss.txn);
        let step = txn.step(ss.step);
        let is_access = match step.kind {
            ActionKind::Update => true,
            ActionKind::Lock => {
                !step.mode.is_intention() && txn.update_steps(step.entity).is_empty()
            }
            ActionKind::Unlock => false,
        };
        if !is_access {
            continue;
        }
        accesses
            .entry(step.entity)
            .or_default()
            .push((pos, ss.txn, step.mode.is_write(), true));
        if step.kind == ActionKind::Update {
            if let Some(p) = sys.db().parent_of(step.entity) {
                accesses
                    .entry(p)
                    .or_default()
                    .push((pos, ss.txn, step.mode.is_write(), false));
            }
        }
    }

    for events in accesses.values() {
        for i in 0..events.len() {
            for j in (i + 1)..events.len() {
                let (a, wa, da) = (events[i].1, events[i].2, events[i].3);
                let (b, wb, db) = (events[j].1, events[j].2, events[j].3);
                if a != b && (wa || wb) && (da || db) {
                    g.add_edge(a.idx(), b.idx());
                }
            }
        }
    }
    g
}

/// True iff the schedule is (conflict-)serializable.
pub fn is_serializable(sys: &TxnSystem, schedule: &Schedule) -> bool {
    kplock_graph::is_acyclic(&serialization_graph(sys, schedule))
}

/// If serializable, returns an equivalent serial order of transactions.
pub fn equivalent_serial_order(sys: &TxnSystem, schedule: &Schedule) -> Option<Vec<TxnId>> {
    let g = serialization_graph(sys, schedule);
    kplock_graph::topo_sort(&g).map(|o| o.into_iter().map(TxnId::from_idx).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TxnBuilder;
    use crate::entity::Database;
    use crate::ids::StepId;
    use crate::schedule::ScheduledStep;

    fn two_txn_sys(scripts: [&str; 2], spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let mut txns = Vec::new();
        for (i, s) in scripts.iter().enumerate() {
            let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
            b.script(s).unwrap();
            txns.push(b.build().unwrap());
        }
        TxnSystem::new(db, txns)
    }

    fn sched(steps: &[(u32, u32)]) -> Schedule {
        Schedule::new(
            steps
                .iter()
                .map(|&(t, s)| ScheduledStep {
                    txn: TxnId(t),
                    step: StepId(s),
                })
                .collect(),
        )
    }

    #[test]
    fn serial_is_serializable() {
        let sys = two_txn_sys(
            ["Lx x Ux Ly y Uy", "Lx x Ux Ly y Uy"],
            &[("x", 0), ("y", 0)],
        );
        let s = Schedule::serial(&sys, &[TxnId(0), TxnId(1)]);
        assert!(is_serializable(&sys, &s));
        assert_eq!(
            equivalent_serial_order(&sys, &s).unwrap(),
            vec![TxnId(0), TxnId(1)]
        );
    }

    #[test]
    fn interleaving_with_cycle_is_not_serializable() {
        // T1: Lx x Ux Ly y Uy ; T2: Ly y Uy Lx x Ux (both centralized,
        // poorly locked: non-two-phase). Schedule: T1 finishes x, T2 finishes
        // y, then T1 takes y, T2 takes x => T1->T2 on x? Let's order:
        // T1 x-section, then T2 x-section (T1->T2 on x); T2 y-section first,
        // then T1 y-section (T2->T1 on y): cycle.
        let sys = two_txn_sys(
            ["Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux"],
            &[("x", 0), ("y", 0)],
        );
        let s = sched(&[
            (1, 0),
            (1, 1),
            (1, 2), // T2: Ly y Uy
            (0, 0),
            (0, 1),
            (0, 2), // T1: Lx x Ux
            (1, 3),
            (1, 4),
            (1, 5), // T2: Lx x Ux
            (0, 3),
            (0, 4),
            (0, 5), // T1: Ly y Uy
        ]);
        s.validate_complete(&sys).unwrap();
        assert!(!is_serializable(&sys, &s));
        assert!(equivalent_serial_order(&sys, &s).is_none());
    }

    #[test]
    fn figure_style_transactions_use_lock_sections() {
        // No update steps at all; conflicts come from lock sections.
        let sys = two_txn_sys(["Lx Ux Ly Uy", "Ly Uy Lx Ux"], &[("x", 0), ("y", 0)]);
        let s = sched(&[
            (1, 0),
            (1, 1), // T2 y-section
            (0, 0),
            (0, 1), // T1 x-section
            (1, 2),
            (1, 3), // T2 x-section
            (0, 2),
            (0, 3), // T1 y-section
        ]);
        s.validate_complete(&sys).unwrap();
        assert!(!is_serializable(&sys, &s));
    }

    #[test]
    fn concurrent_reads_do_not_conflict() {
        // Both transactions only *read* x under shared locks, in an order
        // that would be a conflict cycle if the accesses were writes.
        let sys = two_txn_sys(
            ["SLx rx Ux SLy ry Uy", "SLy ry Uy SLx rx Ux"],
            &[("x", 0), ("y", 0)],
        );
        let s = sched(&[
            (1, 0),
            (1, 1),
            (1, 2), // T2 reads y
            (0, 0),
            (0, 1),
            (0, 2), // T1 reads x
            (1, 3),
            (1, 4),
            (1, 5), // T2 reads x
            (0, 3),
            (0, 4),
            (0, 5), // T1 reads y
        ]);
        s.validate_complete(&sys).unwrap();
        assert!(is_serializable(&sys, &s), "read-read never conflicts");
        // The same shape with exclusive updates is the classic cycle.
        let sys = two_txn_sys(
            ["Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux"],
            &[("x", 0), ("y", 0)],
        );
        let s = sched(&[
            (1, 0),
            (1, 1),
            (1, 2),
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (0, 3),
            (0, 4),
            (0, 5),
        ]);
        assert!(!is_serializable(&sys, &s));
    }

    #[test]
    fn read_write_still_conflicts() {
        // T1 reads x, T2 writes x: order matters.
        let sys = two_txn_sys(
            ["SLx rx Ux Ly y Uy", "Lx x Ux SLy ry Uy"],
            &[("x", 0), ("y", 0)],
        );
        let s = sched(&[
            (0, 0),
            (0, 1),
            (0, 2), // T1 reads x
            (1, 0),
            (1, 1),
            (1, 2), // T2 writes x   => T1 -> T2
            (1, 3),
            (1, 4),
            (1, 5), // T2 reads y
            (0, 3),
            (0, 4),
            (0, 5), // T1 writes y   => T2 -> T1: cycle
        ]);
        s.validate_complete(&sys).unwrap();
        assert!(!is_serializable(&sys, &s));
    }

    #[test]
    fn intention_sections_do_not_conflict() {
        use crate::action::LockMode;
        use crate::ids::SiteId;
        let mut db = Database::new();
        db.add_entity("f", SiteId(0));
        db.add_child("a", SiteId(0), db.entity("f").unwrap());
        db.add_child("b", SiteId(0), db.entity("f").unwrap());
        let mut txns = Vec::new();
        for (name, child) in [("T1", "a"), ("T2", "b")] {
            let mut b = TxnBuilder::new(&db, name);
            b.lock_mode("f", LockMode::IntentionExclusive).unwrap();
            b.lock(child).unwrap();
            b.update(child).unwrap();
            b.unlock(child).unwrap();
            b.unlock("f").unwrap();
            txns.push(b.build().unwrap());
        }
        let sys = TxnSystem::new(db, txns);
        // Both IX sections overlap; the writes touch disjoint children.
        // Intention locks announce, they do not access: serializable.
        let s = sched(&[
            (0, 0),
            (1, 0),
            (0, 1),
            (1, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            (0, 4),
            (1, 4),
        ]);
        s.validate_complete(&sys).unwrap();
        assert!(is_serializable(&sys, &s));
    }

    #[test]
    fn coarse_scan_conflicts_with_child_update() {
        use crate::action::LockMode;
        use crate::ids::SiteId;
        let mut db = Database::new();
        db.add_entity("f", SiteId(0));
        db.add_child("a", SiteId(0), db.entity("f").unwrap());
        // T1 scans the whole file under a coarse shared lock (figure-style,
        // no update steps); T2 updates one record under IX + child X.
        let t1 = {
            let mut b = TxnBuilder::new(&db, "T1");
            b.lock_shared("f").unwrap();
            b.unlock("f").unwrap();
            b.build().unwrap()
        };
        let t2 = {
            let mut b = TxnBuilder::new(&db, "T2");
            b.lock_mode("f", LockMode::IntentionExclusive).unwrap();
            b.lock("a").unwrap();
            b.update("a").unwrap();
            b.unlock("a").unwrap();
            b.unlock("f").unwrap();
            b.build().unwrap()
        };
        let sys = TxnSystem::new(db, vec![t1, t2]);
        // Scan first: the record update is ordered after it.
        let s = sched(&[(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (1, 3), (1, 4)]);
        s.validate_complete(&sys).unwrap();
        assert_eq!(
            equivalent_serial_order(&sys, &s).unwrap(),
            vec![TxnId(0), TxnId(1)]
        );
        // Update first: the conflict flips with it.
        let s = sched(&[(1, 0), (1, 1), (1, 2), (1, 3), (1, 4), (0, 0), (0, 1)]);
        s.validate_complete(&sys).unwrap();
        assert_eq!(
            equivalent_serial_order(&sys, &s).unwrap(),
            vec![TxnId(1), TxnId(0)]
        );
    }

    #[test]
    fn disjoint_entities_always_serializable() {
        let sys = two_txn_sys(["Lx x Ux", "Ly y Uy"], &[("x", 0), ("y", 1)]);
        let s = sched(&[(0, 0), (1, 0), (0, 1), (1, 1), (1, 2), (0, 2)]);
        s.validate_complete(&sys).unwrap();
        assert!(is_serializable(&sys, &s));
    }
}
