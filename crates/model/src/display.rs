//! Paper-style textual rendering of transactions.
//!
//! Renders a transaction as per-site columns (like the paper's Figs. 1
//! and 3): steps of each site in their total order, with cross-site
//! precedence arrows listed below.

use crate::entity::Database;
use crate::ids::SiteId;
use crate::txn::Transaction;

/// Renders `t` as aligned per-site columns plus cross-site arrows.
pub fn render_columns(db: &Database, t: &Transaction) -> String {
    let m = db.site_count();
    let mut columns: Vec<Vec<String>> = Vec::new();
    let mut rows = 0usize;
    for site in 0..m {
        let steps = t.steps_at_site(db, SiteId::from_idx(site));
        // Order the site's steps by the (total) site order.
        let mut ordered = steps.clone();
        ordered.sort_by(|&a, &b| {
            if t.precedes(a, b) {
                std::cmp::Ordering::Less
            } else if t.precedes(b, a) {
                std::cmp::Ordering::Greater
            } else {
                a.cmp(&b)
            }
        });
        let labels: Vec<String> = ordered
            .iter()
            .map(|&s| {
                let step = t.step(s);
                format!("{} ({s})", step.label(db.name_of(step.entity)))
            })
            .collect();
        rows = rows.max(labels.len());
        columns.push(labels);
    }

    let width = columns
        .iter()
        .flatten()
        .map(|s| s.len())
        .max()
        .unwrap_or(4)
        .max(8);

    let mut out = String::new();
    out.push_str(&format!("{}:\n", t.name()));
    for site in 0..m {
        out.push_str(&format!("{:width$} ", format!("site {site}")));
    }
    out.push('\n');
    for r in 0..rows {
        for col in &columns {
            let cell = col.get(r).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{cell:width$} "));
        }
        out.push('\n');
    }

    // Cross-site arrows.
    let mut arrows = Vec::new();
    for (a, b) in t.edge_graph().edges() {
        let sa = db.site_of(t.step(crate::ids::StepId::from_idx(a)).entity);
        let sb = db.site_of(t.step(crate::ids::StepId::from_idx(b)).entity);
        if sa != sb {
            let la = t.step(crate::ids::StepId::from_idx(a));
            let lb = t.step(crate::ids::StepId::from_idx(b));
            arrows.push(format!(
                "  {} -> {}",
                la.label(db.name_of(la.entity)),
                lb.label(db.name_of(lb.entity))
            ));
        }
    }
    if !arrows.is_empty() {
        out.push_str("cross-site precedences:\n");
        for a in arrows {
            out.push_str(&a);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TxnBuilder;
    use crate::entity::Database;

    #[test]
    fn renders_columns_and_arrows() {
        let db = Database::from_spec(&[("x", 0), ("z", 1)]);
        let mut b = TxnBuilder::new(&db, "T1");
        let lx = b.lock("x").unwrap();
        let lz = b.lock("z").unwrap();
        b.unlock("x").unwrap();
        b.unlock("z").unwrap();
        b.edge(lx, lz);
        let t = b.build().unwrap();
        let s = render_columns(&db, &t);
        assert!(s.contains("T1:"));
        assert!(s.contains("site 0"));
        assert!(s.contains("site 1"));
        assert!(s.contains("Lx"));
        assert!(s.contains("cross-site precedences:"));
        assert!(s.contains("Lx -> Lz"));
    }
}
