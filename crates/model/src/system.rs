//! Transaction systems: a database plus a set of locked transactions.

use crate::entity::Database;
use crate::error::ModelError;
use crate::ids::{EntityId, TxnId};
use crate::txn::Transaction;
use crate::validate::{validate, Level};

/// A locked transaction system `T = {T1, ..., Tk}` over a distributed
/// database.
#[derive(Clone, Debug)]
pub struct TxnSystem {
    db: Database,
    txns: Vec<Transaction>,
}

impl TxnSystem {
    /// Bundles a database and transactions.
    pub fn new(db: Database, txns: Vec<Transaction>) -> Self {
        TxnSystem { db, txns }
    }

    /// The database schema.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// All transactions.
    pub fn txns(&self) -> &[Transaction] {
        &self.txns
    }

    /// The transaction with the given id.
    pub fn txn(&self, t: TxnId) -> &Transaction {
        &self.txns[t.idx()]
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True if the system has no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Iterates over transaction ids.
    pub fn txn_ids(&self) -> impl Iterator<Item = TxnId> {
        (0..self.txns.len()).map(TxnId::from_idx)
    }

    /// Validates every transaction at the given level.
    pub fn validate(&self, level: Level) -> Result<(), ModelError> {
        for t in &self.txns {
            validate(&self.db, t, level)?;
        }
        Ok(())
    }

    /// Entities locked by **both** of two transactions — the vertex set of
    /// the paper's conflict digraph `D(Ti, Tj)`.
    pub fn shared_locked_entities(&self, a: TxnId, b: TxnId) -> Vec<EntityId> {
        let la = self.txn(a).locked_entities();
        let lb = self.txn(b).locked_entities();
        la.into_iter().filter(|e| lb.contains(e)).collect()
    }

    /// Total number of steps across the system (the paper's `n`).
    pub fn total_steps(&self) -> usize {
        self.txns.iter().map(|t| t.len()).sum()
    }

    /// Replaces transaction `t`, returning a new system (used by closure
    /// constructions that strengthen partial orders).
    pub fn with_txn(&self, t: TxnId, txn: Transaction) -> TxnSystem {
        let mut txns = self.txns.clone();
        txns[t.idx()] = txn;
        TxnSystem {
            db: self.db.clone(),
            txns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TxnBuilder;

    #[test]
    fn shared_locked_entities() {
        let db = Database::from_spec(&[("x", 0), ("y", 0), ("z", 1)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx x Ux Ly y Uy").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Lx x Ux Lz z Uz").unwrap();
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2]);
        assert_eq!(
            sys.shared_locked_entities(TxnId(0), TxnId(1)),
            vec![sys.db().entity("x").unwrap()]
        );
        assert_eq!(sys.total_steps(), 12);
        assert!(sys.validate(Level::Strict).is_ok());
    }
}
