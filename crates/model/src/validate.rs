//! Well-formedness of locked transactions (Section 2 of the paper).
//!
//! The paper imposes:
//!
//! 1. steps on entities stored at the same site are totally ordered;
//! 2. at most one `lock x`/`unlock x` pair per entity, lock preceding
//!    unlock, and lock/unlock steps appear only as such pairs;
//! 3. if the pair exists, at least one `update x` lies between them;
//! 4. no `update x` outside such a pair.
//!
//! Constraints 3–4 make the locking neither superfluous nor incorrect; they
//! do not affect safety analysis, so [`Level::Locking`] skips them (the
//! paper's own figures omit update steps for brevity).
//!
//! On a hierarchical database (see [`Database::add_child`]) constraints 3–4
//! generalize: an update of a child is protected either by the child's own
//! lock section or by a parent lock section whose mode
//! [shields][crate::LockMode::shields_child] the access (a coarse `S`/`SIX`
//! shields reads, `X` shields everything); and a parent lock section counts
//! as non-empty when it protects an update of any of its children.

use crate::action::ActionKind;
use crate::entity::Database;
use crate::error::ModelError;
use crate::ids::StepId;
use crate::txn::Transaction;

/// How strictly to validate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Constraints 1–2 only (figure-style transactions without updates).
    Locking,
    /// All constraints, including update coverage (3–4).
    Strict,
}

/// Validates `t` against the paper's transaction model.
pub fn validate(db: &Database, t: &Transaction, level: Level) -> Result<(), ModelError> {
    validate_site_totality(db, t)?;
    validate_lock_pairs(t)?;
    if level == Level::Strict {
        validate_updates(db, t)?;
    }
    Ok(())
}

/// Constraint 1: per-site total order.
pub fn validate_site_totality(db: &Database, t: &Transaction) -> Result<(), ModelError> {
    let n = t.len();
    for a in 0..n {
        for b in (a + 1)..n {
            let (sa, sb) = (StepId::from_idx(a), StepId::from_idx(b));
            let site_a = db.site_of(t.step(sa).entity);
            let site_b = db.site_of(t.step(sb).entity);
            if site_a == site_b && t.concurrent(sa, sb) {
                return Err(ModelError::SiteNotTotallyOrdered(sa, sb));
            }
        }
    }
    Ok(())
}

/// Constraint 2: lock/unlock pairing and order. (Uniqueness is enforced at
/// construction time by [`Transaction::new`].)
pub fn validate_lock_pairs(t: &Transaction) -> Result<(), ModelError> {
    let mut entities: Vec<_> = t.steps().iter().map(|s| s.entity).collect();
    entities.sort();
    entities.dedup();
    for e in entities {
        match (t.lock_step(e), t.unlock_step(e)) {
            (None, None) => {}
            (Some(l), Some(u)) => {
                if !t.precedes(l, u) {
                    return Err(ModelError::UnlockBeforeLock(e));
                }
            }
            _ => return Err(ModelError::UnmatchedLockPair(e)),
        }
    }
    Ok(())
}

/// Constraints 3–4: every lock section contains an update; every update is
/// inside its entity's lock section, *and* the lock's mode covers the
/// update's (a write under a merely-shared lock is unprotected — two such
/// sections could overlap and race).
///
/// On a hierarchical database an update may instead be protected by a
/// parent lock section whose mode shields the access, and a parent lock
/// section is non-empty when it protects an update of any child.
pub fn validate_updates(db: &Database, t: &Transaction) -> Result<(), ModelError> {
    // Whether step `s` lies strictly inside entity `e`'s lock section.
    let in_section = |e, s| {
        let (Some(l), Some(u)) = (t.lock_step(e), t.unlock_step(e)) else {
            return false;
        };
        t.precedes(l, s) && t.precedes(s, u)
    };
    for e in t.locked_entities() {
        let own = t.update_steps(e).iter().any(|&s| in_section(e, s));
        // A parent section also counts as non-empty when an update of one
        // of its children lies inside it.
        let via_children = || {
            t.step_ids().any(|s| {
                let st = t.step(s);
                st.kind == ActionKind::Update
                    && db.parent_of(st.entity) == Some(e)
                    && in_section(e, s)
            })
        };
        if !own && !via_children() {
            return Err(ModelError::EmptyLockSection(e));
        }
    }
    for s in t.step_ids() {
        let st = t.step(s);
        if st.kind != ActionKind::Update {
            continue;
        }
        // Protected by the entity's own lock section...
        if in_section(st.entity, s) && t.step(t.lock_step(st.entity).unwrap()).mode.covers(st.mode)
        {
            continue;
        }
        // ...or shielded by a covering parent lock section.
        let shielded = db.parent_of(st.entity).is_some_and(|p| {
            in_section(p, s) && t.step(t.lock_step(p).unwrap()).mode.shields_child(st.mode)
        });
        if !shielded {
            return Err(ModelError::UnprotectedUpdate(s));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TxnBuilder;
    use crate::entity::Database;

    fn db() -> Database {
        Database::from_spec(&[("x", 0), ("y", 1)])
    }

    #[test]
    fn good_strict_transaction() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        b.script("Lx x Ux").unwrap();
        let t = b.build().unwrap();
        assert!(validate(&db, &t, Level::Strict).is_ok());
    }

    #[test]
    fn site_totality_violation() {
        let db = Database::from_spec(&[("x", 0), ("y", 0)]);
        // Two steps at site 0 without ordering: build Transaction directly,
        // bypassing the builder's auto-chaining.
        let t = crate::txn::Transaction::new(
            "T",
            vec![
                crate::action::Step::update(db.entity("x").unwrap()),
                crate::action::Step::update(db.entity("y").unwrap()),
            ],
            [],
        )
        .unwrap();
        assert!(matches!(
            validate_site_totality(&db, &t),
            Err(ModelError::SiteNotTotallyOrdered(_, _))
        ));
    }

    #[test]
    fn cross_site_concurrency_is_fine() {
        let db = db();
        let t = crate::txn::Transaction::new(
            "T",
            vec![
                crate::action::Step::update(db.entity("x").unwrap()),
                crate::action::Step::update(db.entity("y").unwrap()),
            ],
            [],
        )
        .unwrap();
        assert!(validate_site_totality(&db, &t).is_ok());
    }

    #[test]
    fn unmatched_pair() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        b.lock("x").unwrap();
        let t = b.build().unwrap();
        assert_eq!(
            validate_lock_pairs(&t),
            Err(ModelError::UnmatchedLockPair(db.entity("x").unwrap()))
        );
    }

    #[test]
    fn unlock_before_lock() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        b.script("Ux x Lx").unwrap();
        let t = b.build().unwrap();
        assert_eq!(
            validate_lock_pairs(&t),
            Err(ModelError::UnlockBeforeLock(db.entity("x").unwrap()))
        );
    }

    #[test]
    fn empty_lock_section_rejected_strict_only() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        b.script("Lx Ux").unwrap();
        let t = b.build().unwrap();
        assert!(validate(&db, &t, Level::Locking).is_ok());
        assert_eq!(
            validate(&db, &t, Level::Strict),
            Err(ModelError::EmptyLockSection(db.entity("x").unwrap()))
        );
    }

    #[test]
    fn write_under_shared_lock_is_unprotected() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        b.script("SLx x Ux").unwrap(); // exclusive update, shared lock
        let t = b.build().unwrap();
        assert!(matches!(
            validate(&db, &t, Level::Strict),
            Err(ModelError::UnprotectedUpdate(_))
        ));
        // A read under a shared lock — and anything under an exclusive
        // lock — is fine.
        for script in ["SLx rx Ux", "Lx rx Ux", "Lx x Ux"] {
            let mut b = TxnBuilder::new(&db, "T");
            b.script(script).unwrap();
            let t = b.build().unwrap();
            validate(&db, &t, Level::Strict).unwrap_or_else(|e| panic!("{script}: {e}"));
        }
    }

    #[test]
    fn coarse_parent_lock_shields_child_updates() {
        use crate::action::LockMode;
        use crate::ids::SiteId;
        let mut db = Database::new();
        let f = db.add_entity("f", SiteId(0));
        db.add_child("a", SiteId(0), f);
        db.add_child("b", SiteId(0), f);
        // Coarse X on the file: child updates need no locks of their own,
        // and the parent section is non-empty *via* those child updates.
        let mut b = TxnBuilder::new(&db, "T");
        b.lock("f").unwrap();
        b.update("a").unwrap();
        b.update("b").unwrap();
        b.unlock("f").unwrap();
        let t = b.build().unwrap();
        validate(&db, &t, Level::Strict).unwrap();
        // Coarse S shields reads but not writes.
        let mut b = TxnBuilder::new(&db, "T");
        b.lock_shared("f").unwrap();
        b.read("a").unwrap();
        b.unlock("f").unwrap();
        let t = b.build().unwrap();
        validate(&db, &t, Level::Strict).unwrap();
        let mut b = TxnBuilder::new(&db, "T");
        b.lock_shared("f").unwrap();
        b.update("a").unwrap();
        b.unlock("f").unwrap();
        let t = b.build().unwrap();
        assert!(matches!(
            validate(&db, &t, Level::Strict),
            Err(ModelError::UnprotectedUpdate(_))
        ));
        // SIX shields the scan's reads; writes still carry child X locks.
        let mut b = TxnBuilder::new(&db, "T");
        b.lock_mode("f", LockMode::SharedIntentionExclusive)
            .unwrap();
        b.read("a").unwrap();
        b.lock("b").unwrap();
        b.update("b").unwrap();
        b.unlock("b").unwrap();
        b.unlock("f").unwrap();
        let t = b.build().unwrap();
        validate(&db, &t, Level::Strict).unwrap();
    }

    #[test]
    fn intention_parent_lock_shields_nothing() {
        use crate::action::LockMode;
        use crate::ids::SiteId;
        let mut db = Database::new();
        let f = db.add_entity("f", SiteId(0));
        db.add_child("a", SiteId(0), f);
        // IX on the parent plus a child X lock is the well-formed shape...
        let mut b = TxnBuilder::new(&db, "T");
        b.lock_mode("f", LockMode::IntentionExclusive).unwrap();
        b.lock("a").unwrap();
        b.update("a").unwrap();
        b.unlock("a").unwrap();
        b.unlock("f").unwrap();
        let t = b.build().unwrap();
        validate(&db, &t, Level::Strict).unwrap();
        // ...but IX alone does not protect the child update.
        let mut b = TxnBuilder::new(&db, "T");
        b.lock_mode("f", LockMode::IntentionExclusive).unwrap();
        b.update("a").unwrap();
        b.unlock("f").unwrap();
        let t = b.build().unwrap();
        assert!(matches!(
            validate(&db, &t, Level::Strict),
            Err(ModelError::UnprotectedUpdate(_))
        ));
    }

    #[test]
    fn unprotected_update() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        b.script("x Lx y? ").unwrap_err();
        // Build explicitly: update x outside any pair.
        let mut b = TxnBuilder::new(&db, "T");
        b.script("x").unwrap();
        let t = b.build().unwrap();
        assert!(matches!(
            validate(&db, &t, Level::Strict),
            Err(ModelError::UnprotectedUpdate(_))
        ));
    }
}
