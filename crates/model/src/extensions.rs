//! Linear extensions of transaction partial orders.
//!
//! Lemma 1 of the paper reduces safety of `{T1, T2}` to safety of all pairs
//! of linear extensions `{t1, t2}`; this module enumerates, counts and
//! samples extensions.

use crate::ids::StepId;
use crate::txn::Transaction;
use kplock_graph::BitSet;
use std::collections::HashMap;

/// Iterator over all linear extensions of a transaction's partial order.
///
/// Classic backtracking over available (minimal) steps; yields each
/// extension as a `Vec<StepId>`.
pub struct LinearExtensions<'a> {
    txn: &'a Transaction,
    /// Stack of (chosen step, iteration position among avail at that depth).
    stack: Vec<(usize, usize)>,
    prefix: Vec<StepId>,
    indeg: Vec<usize>,
    done: bool,
}

impl<'a> LinearExtensions<'a> {
    /// Creates the iterator.
    pub fn new(txn: &'a Transaction) -> Self {
        let indeg = (0..txn.len())
            .map(|v| txn.edge_graph().predecessors(v).len())
            .collect();
        LinearExtensions {
            txn,
            stack: Vec::new(),
            prefix: Vec::new(),
            indeg,
            done: false,
        }
    }

    fn available(&self) -> Vec<usize> {
        (0..self.txn.len())
            .filter(|&v| self.indeg[v] == 0 && !self.prefix.iter().any(|s| s.idx() == v))
            .collect()
    }

    fn push_choice(&mut self, v: usize, pos: usize) {
        self.prefix.push(StepId::from_idx(v));
        self.stack.push((v, pos));
        for &w in self.txn.edge_graph().successors(v) {
            self.indeg[w] -= 1;
        }
    }

    fn pop_choice(&mut self) -> (usize, usize) {
        let (v, pos) = self.stack.pop().expect("nonempty");
        self.prefix.pop();
        for &w in self.txn.edge_graph().successors(v) {
            self.indeg[w] += 1;
        }
        (v, pos)
    }
}

impl Iterator for LinearExtensions<'_> {
    type Item = Vec<StepId>;

    fn next(&mut self) -> Option<Vec<StepId>> {
        if self.done {
            return None;
        }
        let n = self.txn.len();
        if n == 0 {
            self.done = true;
            return Some(Vec::new());
        }

        // If we have a complete extension from last time, backtrack first.
        let mut resume_pos: Option<usize> = if self.prefix.len() == n {
            let (v, pos) = self.pop_choice();
            let _ = v;
            Some(pos + 1)
        } else {
            None
        };

        loop {
            let avail = self.available();
            let start = resume_pos.take().unwrap_or(0);
            if start < avail.len() {
                let v = avail[start];
                self.push_choice(v, start);
                if self.prefix.len() == n {
                    return Some(self.prefix.clone());
                }
            } else {
                // Exhausted choices at this depth: backtrack.
                if self.stack.is_empty() {
                    self.done = true;
                    return None;
                }
                let (_, pos) = self.pop_choice();
                resume_pos = Some(pos + 1);
            }
        }
    }
}

/// All linear extensions (consider [`LinearExtensions`] for streaming).
pub fn linear_extensions(t: &Transaction) -> Vec<Vec<StepId>> {
    LinearExtensions::new(t).collect()
}

/// Counts linear extensions by dynamic programming over downsets, giving up
/// (returning `None`) once more than `cap` distinct downsets are visited.
pub fn count_linear_extensions(t: &Transaction, cap: usize) -> Option<u128> {
    let n = t.len();
    if n > 127 {
        return None;
    }
    let mut memo: HashMap<BitSet, u128> = HashMap::new();
    let full = BitSet::from_indices(n.max(1), 0..n);
    fn rec(
        t: &Transaction,
        done: &BitSet,
        memo: &mut HashMap<BitSet, u128>,
        cap: usize,
    ) -> Option<u128> {
        if done.count() == t.len() {
            return Some(1);
        }
        if let Some(&v) = memo.get(done) {
            return Some(v);
        }
        if memo.len() > cap {
            return None;
        }
        let mut total: u128 = 0;
        for v in 0..t.len() {
            if done.contains(v) {
                continue;
            }
            let ready = t
                .edge_graph()
                .predecessors(v)
                .iter()
                .all(|&p| done.contains(p));
            if ready {
                let mut next = done.clone();
                next.insert(v);
                total += rec(t, &next, memo, cap)?;
            }
        }
        memo.insert(done.clone(), total);
        Some(total)
    }
    let zero = BitSet::new(full.capacity());
    rec(t, &zero, &mut memo, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Step;
    use crate::ids::EntityId;

    fn antichain(n: usize) -> Transaction {
        let steps = (0..n)
            .map(|i| Step::update(EntityId::from_idx(i)))
            .collect();
        Transaction::new("A", steps, []).unwrap()
    }

    fn chain(n: usize) -> Transaction {
        let steps = (0..n)
            .map(|i| Step::update(EntityId::from_idx(i)))
            .collect();
        let edges =
            (0..n.saturating_sub(1)).map(|i| (StepId::from_idx(i), StepId::from_idx(i + 1)));
        Transaction::new("C", steps, edges).unwrap()
    }

    #[test]
    fn antichain_has_factorial_extensions() {
        let t = antichain(4);
        let exts = linear_extensions(&t);
        assert_eq!(exts.len(), 24);
        // All distinct and all valid.
        for e in &exts {
            assert!(t.is_linear_extension(e));
        }
        let mut sorted = exts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 24);
    }

    #[test]
    fn chain_has_one_extension() {
        let t = chain(5);
        let exts = linear_extensions(&t);
        assert_eq!(exts.len(), 1);
        assert_eq!(exts[0], (0..5).map(StepId::from_idx).collect::<Vec<_>>());
    }

    #[test]
    fn count_matches_enumeration() {
        // N-shaped poset: 0<2, 0<3, 1<3.
        let t = Transaction::new(
            "N",
            (0..4)
                .map(|i| Step::update(EntityId::from_idx(i)))
                .collect(),
            [
                (StepId(0), StepId(2)),
                (StepId(0), StepId(3)),
                (StepId(1), StepId(3)),
            ],
        )
        .unwrap();
        let exts = linear_extensions(&t);
        assert_eq!(
            count_linear_extensions(&t, 10_000).unwrap(),
            exts.len() as u128
        );
    }

    #[test]
    fn empty_transaction() {
        let t = antichain(0);
        assert_eq!(linear_extensions(&t), vec![Vec::<StepId>::new()]);
        assert_eq!(count_linear_extensions(&t, 10).unwrap(), 1);
    }

    #[test]
    fn cap_gives_none() {
        let t = antichain(12);
        assert_eq!(count_linear_extensions(&t, 5), None);
    }
}
