//! Schedules: interleaved executions of a set of transactions.

use crate::action::{ActionKind, LockMode};
use crate::error::ModelError;
use crate::ids::{StepId, TxnId};
use crate::system::TxnSystem;
use std::collections::HashMap;

/// One scheduled step: which transaction executed which of its steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScheduledStep {
    /// The executing transaction.
    pub txn: TxnId,
    /// The step within that transaction.
    pub step: StepId,
}

/// A schedule: a total order of steps of the transactions of a system.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<ScheduledStep>,
}

impl Schedule {
    /// Wraps a step sequence.
    pub fn new(steps: Vec<ScheduledStep>) -> Self {
        Schedule { steps }
    }

    /// The steps, in execution order.
    pub fn steps(&self) -> &[ScheduledStep] {
        &self.steps
    }

    /// Number of scheduled steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if nothing was scheduled.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step.
    pub fn push(&mut self, txn: TxnId, step: StepId) {
        self.steps.push(ScheduledStep { txn, step });
    }

    /// The serial schedule `T_{order[0]} T_{order[1]} ...` of a system.
    pub fn serial(sys: &TxnSystem, order: &[TxnId]) -> Schedule {
        let mut s = Schedule::default();
        for &t in order {
            let txn = sys.txn(t);
            let total = kplock_graph::topo_sort(txn.edge_graph()).expect("txn dag");
            for v in total {
                s.push(t, StepId::from_idx(v));
            }
        }
        s
    }

    /// Checks legality of this schedule for `sys` per the paper:
    ///
    /// (a) it does not contradict any transaction's partial order, and
    /// (b) lock sections on one entity overlap only when every involved
    ///     mode is compatible (two exclusive locks — the paper's only
    ///     mode — must be separated by an unlock; shared locks coexist);
    ///
    /// plus basic sanity (each step appears at most once, ids in range).
    /// Use [`Schedule::validate_complete`] to additionally require that every
    /// step of every transaction appears.
    pub fn validate_prefix(&self, sys: &TxnSystem) -> Result<(), ModelError> {
        let mut done: Vec<Vec<bool>> = sys.txns().iter().map(|t| vec![false; t.len()]).collect();
        // Lock ownership: entity -> current holders with modes.
        let mut lock_held: HashMap<crate::ids::EntityId, Vec<(TxnId, LockMode)>> = HashMap::new();

        for (i, ss) in self.steps.iter().enumerate() {
            let t = ss.txn.idx();
            if t >= sys.len() {
                return Err(ModelError::IllegalSchedule(format!(
                    "step {i}: unknown transaction {}",
                    ss.txn
                )));
            }
            let txn = sys.txn(ss.txn);
            if ss.step.idx() >= txn.len() {
                return Err(ModelError::BadStepId(ss.step));
            }
            if done[t][ss.step.idx()] {
                return Err(ModelError::IllegalSchedule(format!(
                    "step {i}: {} of {} executed twice",
                    ss.step, ss.txn
                )));
            }
            // (a) all predecessors in the partial order already executed.
            for p in txn.edge_graph().predecessors(ss.step.idx()) {
                if !done[t][*p] {
                    return Err(ModelError::IllegalSchedule(format!(
                        "step {i}: {} of {} before its predecessor",
                        ss.step, ss.txn
                    )));
                }
            }
            // (b) lock-mode exclusion.
            let step = txn.step(ss.step);
            match step.kind {
                ActionKind::Lock => {
                    let holders = lock_held.entry(step.entity).or_default();
                    if let Some(&(holder, _)) = holders
                        .iter()
                        .find(|&&(_, m)| !m.compatible_with(step.mode))
                    {
                        return Err(ModelError::IllegalSchedule(format!(
                            "step {i}: {} locks {} already held by {holder}",
                            ss.txn, step.entity
                        )));
                    }
                    holders.push((ss.txn, step.mode));
                }
                ActionKind::Unlock => {
                    // Paper's schedules only require separation of two locks
                    // by an unlock; unlocking without holding is a model bug.
                    let holders = lock_held.entry(step.entity).or_default();
                    let before = holders.len();
                    holders.retain(|&(t, _)| t != ss.txn);
                    if holders.len() == before {
                        return Err(ModelError::IllegalSchedule(format!(
                            "step {i}: {} unlocks {} it does not hold",
                            ss.txn, step.entity
                        )));
                    }
                }
                ActionKind::Update => {}
            }
            done[t][ss.step.idx()] = true;
        }
        Ok(())
    }

    /// [`Schedule::validate_prefix`] plus completeness: every step of every
    /// transaction appears exactly once.
    pub fn validate_complete(&self, sys: &TxnSystem) -> Result<(), ModelError> {
        self.validate_prefix(sys)?;
        let expected: usize = sys.txns().iter().map(|t| t.len()).sum();
        if self.len() != expected {
            return Err(ModelError::IllegalSchedule(format!(
                "schedule has {} steps, system has {expected}",
                self.len()
            )));
        }
        Ok(())
    }

    /// Pretty form with subscripts as in the paper's Fig. 1, e.g.
    /// `Lx1 x1 Ly2 ...` (label + 1-based transaction subscript).
    pub fn display(&self, sys: &TxnSystem) -> String {
        self.steps
            .iter()
            .map(|ss| {
                let txn = sys.txn(ss.txn);
                let step = txn.step(ss.step);
                let name = sys.db().name_of(step.entity);
                format!("{}{}", step.label(name), ss.txn.idx() + 1)
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TxnBuilder;
    use crate::entity::Database;
    use crate::system::TxnSystem;

    fn sys() -> TxnSystem {
        let db = Database::from_spec(&[("x", 0)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx x Ux").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Lx x Ux").unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    fn st(t: u32, s: u32) -> ScheduledStep {
        ScheduledStep {
            txn: TxnId(t),
            step: StepId(s),
        }
    }

    #[test]
    fn serial_schedules_are_legal() {
        let sys = sys();
        let s = Schedule::serial(&sys, &[TxnId(0), TxnId(1)]);
        assert!(s.validate_complete(&sys).is_ok());
        let s = Schedule::serial(&sys, &[TxnId(1), TxnId(0)]);
        assert!(s.validate_complete(&sys).is_ok());
    }

    #[test]
    fn lock_conflict_is_illegal() {
        let sys = sys();
        // T1 locks x, then T2 tries to lock x.
        let s = Schedule::new(vec![st(0, 0), st(1, 0)]);
        assert!(s.validate_prefix(&sys).is_err());
    }

    #[test]
    fn partial_order_violation() {
        let sys = sys();
        // T1 updates x before locking it.
        let s = Schedule::new(vec![st(0, 1)]);
        assert!(s.validate_prefix(&sys).is_err());
    }

    #[test]
    fn incomplete_schedule_detected() {
        let sys = sys();
        let s = Schedule::new(vec![st(0, 0)]);
        assert!(s.validate_prefix(&sys).is_ok());
        assert!(s.validate_complete(&sys).is_err());
    }

    #[test]
    fn double_execution_detected() {
        let sys = sys();
        let s = Schedule::new(vec![st(0, 0), st(0, 0)]);
        assert!(s.validate_prefix(&sys).is_err());
    }

    #[test]
    fn unlock_without_holding() {
        let sys = sys();
        // Direct unlock as first scheduled step violates partial order;
        // craft a system-level check instead via prefix: T1 lock, T1 update,
        // T2 unlock (T2's unlock is step 2 but needs its own predecessors).
        let s = Schedule::new(vec![st(0, 0), st(0, 1), st(1, 2)]);
        assert!(s.validate_prefix(&sys).is_err());
    }

    #[test]
    fn shared_lock_sections_may_overlap() {
        let db = Database::from_spec(&[("x", 0)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("SLx rx Ux").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("SLx rx Ux").unwrap();
        let t2 = b2.build().unwrap();
        let mut b3 = TxnBuilder::new(&db, "T3");
        b3.script("Lx x Ux").unwrap();
        let t3 = b3.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2, t3]);
        // Fully interleaved shared sections are legal...
        let s = Schedule::new(vec![
            st(0, 0),
            st(1, 0),
            st(0, 1),
            st(1, 1),
            st(0, 2),
            st(1, 2),
        ]);
        s.validate_prefix(&sys).unwrap();
        // ...but an exclusive lock may not join a shared section...
        let s = Schedule::new(vec![st(0, 0), st(2, 0)]);
        assert!(s.validate_prefix(&sys).is_err());
        // ...and a shared lock may not join an exclusive section.
        let s = Schedule::new(vec![st(2, 0), st(0, 0)]);
        assert!(s.validate_prefix(&sys).is_err());
    }

    #[test]
    fn display_uses_subscripts() {
        let sys = sys();
        let s = Schedule::new(vec![st(0, 0), st(0, 1)]);
        assert_eq!(s.display(&sys), "Lx1 x1");
    }
}
