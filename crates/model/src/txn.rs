//! Transactions: partially ordered sets of steps, totally ordered per site.

use crate::action::{ActionKind, Step};
use crate::entity::Database;
use crate::error::ModelError;
use crate::ids::{EntityId, SiteId, StepId};
use kplock_graph::{BitSet, DiGraph};
use std::collections::HashMap;

/// A (locked) transaction: the paper's triple `T = (S, A, e)`.
///
/// Steps are indexed densely by [`StepId`]. The precedence relation is kept
/// both as the direct edge graph (the dag drawn in the paper's figures) and
/// as its transitive closure for O(1) `precedes` queries. Construction
/// guarantees acyclicity; site-totality and locking discipline are checked
/// by `crate::validate`.
#[derive(Clone, Debug)]
pub struct Transaction {
    name: String,
    steps: Vec<Step>,
    graph: DiGraph,
    /// `closure[s]` = steps reachable from `s` (including `s` itself).
    closure: Vec<BitSet>,
    /// Lock/unlock step per entity (validated unique).
    lock_of: HashMap<EntityId, StepId>,
    unlock_of: HashMap<EntityId, StepId>,
}

impl Transaction {
    /// Builds a transaction from steps and direct precedence edges.
    ///
    /// Fails if the precedence relation is cyclic or an entity has duplicate
    /// lock/unlock steps. (Deeper well-formedness checks live in `crate::validate`.)
    pub fn new(
        name: impl Into<String>,
        steps: Vec<Step>,
        edges: impl IntoIterator<Item = (StepId, StepId)>,
    ) -> Result<Self, ModelError> {
        let n = steps.len();
        let mut graph = DiGraph::new(n);
        for (a, b) in edges {
            if a.idx() >= n {
                return Err(ModelError::BadStepId(a));
            }
            if b.idx() >= n {
                return Err(ModelError::BadStepId(b));
            }
            graph.add_edge(a.idx(), b.idx());
        }
        Self::from_graph(name.into(), steps, graph)
    }

    fn from_graph(name: String, steps: Vec<Step>, graph: DiGraph) -> Result<Self, ModelError> {
        if kplock_graph::topo_sort(&graph).is_none() {
            // Find a node on a cycle for the error message.
            let c = kplock_graph::find_cycle(&graph).expect("cycle exists");
            return Err(ModelError::CyclicPrecedence(StepId::from_idx(c[0])));
        }
        let closure = kplock_graph::transitive_closure(&graph);
        let mut lock_of = HashMap::new();
        let mut unlock_of = HashMap::new();
        for (i, s) in steps.iter().enumerate() {
            let map = match s.kind {
                ActionKind::Lock => &mut lock_of,
                ActionKind::Unlock => &mut unlock_of,
                ActionKind::Update => continue,
            };
            if map.insert(s.entity, StepId::from_idx(i)).is_some() {
                return Err(ModelError::DuplicateLockStep(s.entity));
            }
        }
        Ok(Transaction {
            name,
            steps,
            graph,
            closure,
            lock_of,
            unlock_of,
        })
    }

    /// The transaction's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the transaction has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step with the given id.
    pub fn step(&self, s: StepId) -> Step {
        self.steps[s.idx()]
    }

    /// All steps in id order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Iterates over step ids.
    pub fn step_ids(&self) -> impl Iterator<Item = StepId> {
        (0..self.steps.len()).map(StepId::from_idx)
    }

    /// The direct precedence edges (the dag of the paper's figures).
    pub fn edge_graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Strict precedence in the partial order: `a ≺ b`.
    pub fn precedes(&self, a: StepId, b: StepId) -> bool {
        a != b && self.closure[a.idx()].contains(b.idx())
    }

    /// `a ≼ b`: precedes or equal.
    pub fn precedes_eq(&self, a: StepId, b: StepId) -> bool {
        self.closure[a.idx()].contains(b.idx())
    }

    /// True if neither `a ≺ b` nor `b ≺ a` (and `a != b`).
    pub fn concurrent(&self, a: StepId, b: StepId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// The `lock e` step, if present.
    pub fn lock_step(&self, e: EntityId) -> Option<StepId> {
        self.lock_of.get(&e).copied()
    }

    /// The `unlock e` step, if present.
    pub fn unlock_step(&self, e: EntityId) -> Option<StepId> {
        self.unlock_of.get(&e).copied()
    }

    /// Entities with a lock step, in ascending id order.
    pub fn locked_entities(&self) -> Vec<EntityId> {
        let mut v: Vec<EntityId> = self.lock_of.keys().copied().collect();
        v.sort();
        v
    }

    /// All `update e` steps.
    pub fn update_steps(&self, e: EntityId) -> Vec<StepId> {
        self.step_ids()
            .filter(|&s| {
                let st = self.step(s);
                st.kind == ActionKind::Update && st.entity == e
            })
            .collect()
    }

    /// Entities touched by any step.
    pub fn touched_entities(&self) -> Vec<EntityId> {
        let mut v: Vec<EntityId> = self.steps.iter().map(|s| s.entity).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Steps located at `site` (by the entity's stored-at function), in id
    /// order.
    pub fn steps_at_site(&self, db: &Database, site: SiteId) -> Vec<StepId> {
        self.step_ids()
            .filter(|&s| db.site_of(self.step(s).entity) == site)
            .collect()
    }

    /// Returns a new transaction with the extra precedence `a ≺ b`, or an
    /// error if that would create a cycle. Used by the Theorem-2 closure
    /// construction, which repeatedly strengthens partial orders.
    pub fn with_precedence(&self, a: StepId, b: StepId) -> Result<Transaction, ModelError> {
        if self.precedes(b, a) || a == b {
            return Err(ModelError::WouldCreateCycle(a, b));
        }
        if self.precedes(a, b) {
            return Ok(self.clone());
        }
        let mut graph = self.graph.clone();
        graph.add_edge(a.idx(), b.idx());
        Self::from_graph(self.name.clone(), self.steps.clone(), graph)
    }

    /// Whether `order` (a permutation of all steps) is a linear extension.
    pub fn is_linear_extension(&self, order: &[StepId]) -> bool {
        let as_idx: Vec<usize> = order.iter().map(|s| s.idx()).collect();
        kplock_graph::is_topological_order(&self.graph, &as_idx)
    }

    /// A totally ordered copy of this transaction following `order`
    /// (each consecutive pair gets an edge). Fails if `order` is not a
    /// linear extension.
    pub fn linearized(&self, order: &[StepId]) -> Result<Transaction, ModelError> {
        if !self.is_linear_extension(order) {
            return Err(ModelError::IllegalSchedule(
                "order is not a linear extension".into(),
            ));
        }
        let steps: Vec<Step> = order.iter().map(|&s| self.step(s)).collect();
        let edges = (0..steps.len().saturating_sub(1))
            .map(|i| (StepId::from_idx(i), StepId::from_idx(i + 1)));
        Transaction::new(self.name.clone(), steps, edges)
    }

    /// True iff the partial order is already total.
    pub fn is_total_order(&self) -> bool {
        let n = self.len();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.concurrent(StepId::from_idx(a), StepId::from_idx(b)) {
                    return false;
                }
            }
        }
        true
    }

    /// For a total order, the steps in execution order.
    pub fn total_order(&self) -> Option<Vec<StepId>> {
        let order = kplock_graph::topo_sort(&self.graph)?;
        let ids: Vec<StepId> = order.into_iter().map(StepId::from_idx).collect();
        // Verify totality: each consecutive pair must be ordered.
        for w in ids.windows(2) {
            if !self.precedes(w[0], w[1]) {
                return None;
            }
        }
        Some(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_step_txn() -> Transaction {
        let x = EntityId(0);
        Transaction::new(
            "T",
            vec![Step::lock(x), Step::unlock(x)],
            [(StepId(0), StepId(1))],
        )
        .unwrap()
    }

    #[test]
    fn precedence_queries() {
        let t = two_step_txn();
        assert!(t.precedes(StepId(0), StepId(1)));
        assert!(!t.precedes(StepId(1), StepId(0)));
        assert!(!t.precedes(StepId(0), StepId(0)));
        assert!(t.precedes_eq(StepId(0), StepId(0)));
        assert!(!t.concurrent(StepId(0), StepId(1)));
    }

    #[test]
    fn rejects_cycles() {
        let x = EntityId(0);
        let r = Transaction::new(
            "T",
            vec![Step::lock(x), Step::unlock(x)],
            [(StepId(0), StepId(1)), (StepId(1), StepId(0))],
        );
        assert!(matches!(r, Err(ModelError::CyclicPrecedence(_))));
    }

    #[test]
    fn rejects_duplicate_locks() {
        let x = EntityId(0);
        let r = Transaction::new("T", vec![Step::lock(x), Step::lock(x)], []);
        assert_eq!(r.unwrap_err(), ModelError::DuplicateLockStep(EntityId(0)));
    }

    #[test]
    fn lock_lookup() {
        let t = two_step_txn();
        assert_eq!(t.lock_step(EntityId(0)), Some(StepId(0)));
        assert_eq!(t.unlock_step(EntityId(0)), Some(StepId(1)));
        assert_eq!(t.locked_entities(), vec![EntityId(0)]);
    }

    #[test]
    fn with_precedence_detects_cycles() {
        let x = EntityId(0);
        let y = EntityId(1);
        let t = Transaction::new("T", vec![Step::update(x), Step::update(y)], []).unwrap();
        assert!(t.concurrent(StepId(0), StepId(1)));
        let t2 = t.with_precedence(StepId(0), StepId(1)).unwrap();
        assert!(t2.precedes(StepId(0), StepId(1)));
        assert!(matches!(
            t2.with_precedence(StepId(1), StepId(0)),
            Err(ModelError::WouldCreateCycle(_, _))
        ));
        // Adding an already-implied precedence is a no-op.
        let t3 = t2.with_precedence(StepId(0), StepId(1)).unwrap();
        assert!(t3.precedes(StepId(0), StepId(1)));
    }

    #[test]
    fn totality_checks() {
        let x = EntityId(0);
        let y = EntityId(1);
        let partial = Transaction::new("T", vec![Step::update(x), Step::update(y)], []).unwrap();
        assert!(!partial.is_total_order());
        assert!(partial.total_order().is_none());
        let total = partial.with_precedence(StepId(0), StepId(1)).unwrap();
        assert!(total.is_total_order());
        assert_eq!(total.total_order().unwrap(), vec![StepId(0), StepId(1)]);
    }

    #[test]
    fn linear_extension_roundtrip() {
        let x = EntityId(0);
        let y = EntityId(1);
        let t = Transaction::new("T", vec![Step::update(x), Step::update(y)], []).unwrap();
        assert!(t.is_linear_extension(&[StepId(1), StepId(0)]));
        let lin = t.linearized(&[StepId(1), StepId(0)]).unwrap();
        assert!(lin.is_total_order());
        assert_eq!(lin.step(StepId(0)).entity, y);
        assert!(t.linearized(&[StepId(0)]).is_err());
    }
}
