//! Error types for the model crate.

use crate::ids::{EntityId, StepId};
use std::fmt;

/// Errors raised while constructing or validating transactions and systems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// Entity name not present in the database.
    UnknownEntity(String),
    /// The precedence relation has a cycle involving this step.
    CyclicPrecedence(StepId),
    /// Two steps at the same site are not ordered (violates the paper's
    /// per-site total-order restriction).
    SiteNotTotallyOrdered(StepId, StepId),
    /// More than one `lock x` (or `unlock x`) step for the same entity.
    DuplicateLockStep(EntityId),
    /// A `lock x` without `unlock x`, or vice versa.
    UnmatchedLockPair(EntityId),
    /// `unlock x` does not follow `lock x` in the partial order.
    UnlockBeforeLock(EntityId),
    /// No `update x` between `lock x` and `unlock x` (superfluous locking).
    EmptyLockSection(EntityId),
    /// An `update x` not surrounded by the `lock x`/`unlock x` pair.
    UnprotectedUpdate(StepId),
    /// A step index out of range for this transaction.
    BadStepId(StepId),
    /// Adding a precedence would create a cycle.
    WouldCreateCycle(StepId, StepId),
    /// Schedules: a step appears that is not next per some constraint.
    IllegalSchedule(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownEntity(n) => write!(f, "unknown entity {n:?}"),
            ModelError::CyclicPrecedence(s) => {
                write!(f, "precedence relation is cyclic at step {s}")
            }
            ModelError::SiteNotTotallyOrdered(a, b) => {
                write!(f, "steps {a} and {b} are at the same site but not ordered")
            }
            ModelError::DuplicateLockStep(e) => {
                write!(f, "more than one lock or unlock step for entity {e}")
            }
            ModelError::UnmatchedLockPair(e) => {
                write!(f, "lock/unlock steps for entity {e} do not form a pair")
            }
            ModelError::UnlockBeforeLock(e) => {
                write!(f, "unlock {e} does not follow lock {e}")
            }
            ModelError::EmptyLockSection(e) => {
                write!(f, "no update between lock {e} and unlock {e}")
            }
            ModelError::UnprotectedUpdate(s) => {
                write!(f, "update step {s} not surrounded by its lock/unlock pair")
            }
            ModelError::BadStepId(s) => write!(f, "step id {s} out of range"),
            ModelError::WouldCreateCycle(a, b) => {
                write!(f, "adding precedence {a} -> {b} would create a cycle")
            }
            ModelError::IllegalSchedule(msg) => write!(f, "illegal schedule: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}
