//! Newtype identifiers for the model.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index, for array addressing.
            #[inline]
            pub fn idx(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            #[inline]
            pub fn from_idx(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a database entity (the paper's lockable granule).
    EntityId,
    "e"
);
id_type!(
    /// Identifies a site of the distributed database.
    SiteId,
    "s"
);
id_type!(
    /// Identifies a step within a single transaction (dense, 0-based).
    StepId,
    "p"
);
id_type!(
    /// Identifies a transaction within a system (dense, 0-based).
    TxnId,
    "T"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let e = EntityId::from_idx(7);
        assert_eq!(e.idx(), 7);
        assert_eq!(format!("{e}"), "e7");
        assert_eq!(format!("{:?}", SiteId(2)), "s2");
    }

    #[test]
    fn ordering() {
        assert!(StepId(1) < StepId(2));
        assert_eq!(TxnId(3), TxnId(3));
    }
}
