//! Per-site projections of transactions and schedules.
//!
//! The paper's key structural constraint is that a distributed transaction
//! restricted to one site is a total order (an ordinary centralized
//! transaction). Projections make that explicit, and let the simulator and
//! the display code reason about what each site observes.

use crate::entity::Database;
use crate::ids::{SiteId, StepId, TxnId};
use crate::schedule::{Schedule, ScheduledStep};
use crate::system::TxnSystem;
use crate::txn::Transaction;

/// The steps of `t` located at `site`, in their (total) site order.
pub fn txn_site_order(db: &Database, t: &Transaction, site: SiteId) -> Vec<StepId> {
    let mut steps = t.steps_at_site(db, site);
    steps.sort_by(|&a, &b| {
        if t.precedes(a, b) {
            std::cmp::Ordering::Less
        } else if t.precedes(b, a) {
            std::cmp::Ordering::Greater
        } else {
            a.cmp(&b)
        }
    });
    steps
}

/// Projects a schedule onto one site: the sub-sequence of steps whose
/// entities live at `site`.
pub fn schedule_at_site(sys: &TxnSystem, schedule: &Schedule, site: SiteId) -> Vec<ScheduledStep> {
    schedule
        .steps()
        .iter()
        .copied()
        .filter(|ss| {
            let step = sys.txn(ss.txn).step(ss.step);
            sys.db().site_of(step.entity) == site
        })
        .collect()
}

/// Checks the fundamental projection property: a legal schedule's
/// projection onto any site executes each transaction's site steps in
/// exactly their site order.
pub fn projection_respects_site_orders(sys: &TxnSystem, schedule: &Schedule) -> bool {
    for site in 0..sys.db().site_count() {
        let site = SiteId::from_idx(site);
        let proj = schedule_at_site(sys, schedule, site);
        for t in 0..sys.len() {
            let txn = TxnId::from_idx(t);
            let observed: Vec<StepId> = proj
                .iter()
                .filter(|ss| ss.txn == txn)
                .map(|ss| ss.step)
                .collect();
            let mut expected = txn_site_order(sys.db(), sys.txn(txn), site);
            expected.truncate(observed.len()); // schedule may be a prefix
            if observed != expected {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TxnBuilder;
    use crate::entity::Database;

    fn sys() -> TxnSystem {
        let db = Database::from_spec(&[("x", 0), ("y", 0), ("w", 1)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx x Ux Ly y Uy").unwrap();
        b1.script("Lw w Uw").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Ly y Uy").unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn site_order_is_total() {
        let sys = sys();
        let order = txn_site_order(sys.db(), sys.txn(TxnId(0)), SiteId(0));
        assert_eq!(order.len(), 6);
        // Consecutive steps are strictly ordered.
        for w in order.windows(2) {
            assert!(sys.txn(TxnId(0)).precedes(w[0], w[1]));
        }
        let site1 = txn_site_order(sys.db(), sys.txn(TxnId(0)), SiteId(1));
        assert_eq!(site1.len(), 3);
    }

    #[test]
    fn serial_schedule_projects_correctly() {
        let sys = sys();
        let s = Schedule::serial(&sys, &[TxnId(0), TxnId(1)]);
        assert!(projection_respects_site_orders(&sys, &s));
        let proj0 = schedule_at_site(&sys, &s, SiteId(0));
        let proj1 = schedule_at_site(&sys, &s, SiteId(1));
        assert_eq!(proj0.len() + proj1.len(), s.len());
    }

    #[test]
    fn detects_out_of_order_projection() {
        let sys = sys();
        // Swap T1's Lx and x: illegal; projection check notices.
        let mut steps = Schedule::serial(&sys, &[TxnId(0), TxnId(1)])
            .steps()
            .to_vec();
        steps.swap(0, 1);
        let s = Schedule::new(steps);
        assert!(!projection_respects_site_orders(&sys, &s));
    }
}
