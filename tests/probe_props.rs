//! Property-based invariants for the distributed probe detector.
//!
//! On random multi-site systems under synchronized 2PL (no transaction
//! releases a lock while a lock request is pending — the model in which
//! Chandy–Misra–Haas is provably exact):
//!
//! * **completeness** — every cycle the global scan finds is eventually
//!   found by probes: whenever the periodic-scan run completes, the probe
//!   run completes too (an unfound cycle would stall or time out);
//! * **soundness** — probes never abort a non-cycle member: the
//!   measurement-only `probe_audit` cross-check counts zero phantom kills.

use kplock::core::policy::LockStrategy;
use kplock::sim::{run, DeadlockDetection, LatencyModel, RunOutcome, SimConfig};
use kplock::workload::{random_system, WorkloadParams};
use proptest::prelude::*;

fn system(seed: u64, sites: usize, txns: usize) -> kplock::model::TxnSystem {
    random_system(&WorkloadParams {
        seed,
        sites,
        entities_per_site: 2,
        transactions: txns,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Completeness + soundness on random multi-site sync-2PL systems.
    #[test]
    fn probes_find_every_cycle_and_only_real_cycles(
        seed in 0u64..400,
        sim_seed in 0u64..50,
        sites in 2usize..5,
        txns in 2usize..6,
    ) {
        let sys = system(seed, sites, txns);
        let base = SimConfig {
            latency: LatencyModel::Uniform(1, 20),
            seed: sim_seed,
            ..Default::default()
        };
        let scan = run(&sys, &base).unwrap();
        if !scan.finished() {
            return Ok(()); // scan livelocks are not the probe's bug
        }
        let probe_cfg = SimConfig {
            resolution: DeadlockDetection::Probe.into(),
            probe_audit: true,
            ..base
        };
        let probe = run(&sys, &probe_cfg).unwrap();
        prop_assert_eq!(
            probe.outcome,
            RunOutcome::Completed,
            "probe run did not complete: an undetected cycle (seed {}, sim {})",
            seed,
            sim_seed
        );
        prop_assert_eq!(probe.metrics.committed, sys.len());
        prop_assert!(probe.audit.serializable, "sync-2PL must audit clean");
        prop_assert_eq!(
            probe.metrics.phantom_probe_aborts,
            0,
            "probe aborted a non-cycle member (seed {}, sim {})",
            seed,
            sim_seed
        );
        // Detection work is only spent when something actually blocked
        // across sites; a deadlock-free run costs zero aborts both ways.
        if scan.metrics.deadlocks_resolved == 0 && probe.metrics.deadlocks_resolved == 0 {
            prop_assert_eq!(probe.metrics.aborts, scan.metrics.aborts);
        }
    }

    /// Under skewed hot-site load the invariants must hold too — the case
    /// where every probe chase funnels through one site.
    #[test]
    fn probes_survive_hot_site_skew(seed in 0u64..200, hot in 50u32..=100) {
        let sys = random_system(&WorkloadParams {
            seed,
            sites: 3,
            entities_per_site: 2,
            transactions: 4,
            steps_per_txn: 5,
            hot_site_percent: hot,
            strategy: LockStrategy::TwoPhaseSync,
            ..Default::default()
        });
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            resolution: DeadlockDetection::Probe.into(),
            probe_audit: true,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        prop_assert_eq!(r.outcome, RunOutcome::Completed);
        prop_assert!(r.audit.serializable);
        prop_assert_eq!(r.metrics.phantom_probe_aborts, 0);
    }
}
