//! Differential proof that [`QueueTable`] is a drop-in replacement for
//! [`FifoTable`]: with a neutral bias the arena-backed queue table must
//! be *observationally identical* to the map-of-vecs FIFO table — same
//! acquire outcomes, same grant order on release, same wait-for edges,
//! same holder sets — under arbitrary operation streams (proptest) and
//! under the full simulator across all six resolution arms, including a
//! lossy fault plan with the invariant audit on.
//!
//! The bias knobs are exercised for *liveness* only (every waiter is
//! eventually granted when the table drains); their reordering semantics
//! are pinned by `crates/dlm`'s own unit tests.

use kplock::dlm::{Bias, FifoTable, PreventionScheme, QueueTable, TableSpec};
use kplock::model::{EntityId, LockMode};
use kplock::sim::{run, DeadlockDetection, DeadlockResolution, FaultPlan, LatencyModel, SimConfig};
use kplock::workload::{random_system, WorkloadParams};
use kplock_core::policy::LockStrategy;
use proptest::prelude::*;

const ENTITIES: u32 = 4;
const OWNERS: u32 = 5;

const X: LockMode = LockMode::Exclusive;
const S: LockMode = LockMode::Shared;

/// One step of a random operation stream, applied to both tables.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Plain FIFO request.
    Request { e: u32, o: u32, exclusive: bool },
    /// Prevention-admission request under one of the three schemes.
    RequestPrio {
        e: u32,
        o: u32,
        exclusive: bool,
        scheme: PreventionScheme,
    },
    /// Idempotent release (no-op when `o` holds nothing on `e`).
    Release { e: u32, o: u32 },
    /// Cancel all of `o`'s queued waits.
    Cancel { o: u32 },
    /// Release every lock `o` holds, everywhere.
    ReleaseAll { o: u32 },
}

/// Expands a proptest-drawn seed into a weighted op stream (the vendored
/// proptest shim has no combinator strategies, so composition happens
/// here with an explicitly seeded RNG — still fully reproducible from
/// the reported `seed`/`len`).
fn gen_ops(seed: u64, len: usize) -> Vec<Op> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let schemes = [
        PreventionScheme::WoundWait,
        PreventionScheme::WaitDie,
        PreventionScheme::NoWait,
    ];
    (0..len)
        .map(|_| {
            let e = rng.gen_range(0..ENTITIES);
            let o = rng.gen_range(0..OWNERS);
            let exclusive = rng.gen_range(0u8..2) == 1;
            match rng.gen_range(0u8..10) {
                0..=2 => Op::Request { e, o, exclusive },
                3..=4 => Op::RequestPrio {
                    e,
                    o,
                    exclusive,
                    scheme: schemes[rng.gen_range(0..3usize)],
                },
                5..=7 => Op::Release { e, o },
                8 => Op::Cancel { o },
                _ => Op::ReleaseAll { o },
            }
        })
        .collect()
}

/// Lower owner id = older transaction, like the runners' birth order.
fn prio(o: u32) -> (u64, u64) {
    (u64::from(o), 0)
}

/// Every observable the trait exposes must agree, and both tables must
/// be structurally sound.
fn assert_same_state(f: &FifoTable<u32>, q: &QueueTable<u32>, ctx: &str) {
    f.check_invariants()
        .unwrap_or_else(|e| panic!("fifo invariants after {ctx}: {e}"));
    q.check_invariants()
        .unwrap_or_else(|e| panic!("queue invariants after {ctx}: {e}"));

    let sorted = |mut v: Vec<(u32, u32)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(
        sorted(f.waits_for()),
        sorted(q.waits_for()),
        "waits_for diverged after {ctx}"
    );
    let mut af = f.active_entities();
    let mut aq = q.active_entities();
    af.sort_unstable_by_key(|e| e.0);
    aq.sort_unstable_by_key(|e| e.0);
    assert_eq!(af, aq, "active_entities diverged after {ctx}");

    for o in 0..OWNERS {
        let mut hf = f.held_by(o);
        let mut hq = q.held_by(o);
        hf.sort_unstable_by_key(|e| e.0);
        hq.sort_unstable_by_key(|e| e.0);
        assert_eq!(hf, hq, "held_by({o}) diverged after {ctx}");
        let mut wf = f.waits_of(o);
        let mut wq = q.waits_of(o);
        wf.sort_unstable();
        wq.sort_unstable();
        assert_eq!(wf, wq, "waits_of({o}) diverged after {ctx}");
    }
    for e in 0..ENTITIES {
        let e = EntityId(e);
        let mut hf = f.holders(e);
        let mut hq = q.holders(e);
        hf.sort_unstable();
        hq.sort_unstable();
        assert_eq!(hf, hq, "holders({e:?}) diverged after {ctx}");
        for o in 0..OWNERS {
            assert_eq!(f.holds(e, o), q.holds(e, o), "holds({e:?},{o}) after {ctx}");
            assert_eq!(
                f.is_waiting(e, o),
                q.is_waiting(e, o),
                "is_waiting({e:?},{o}) after {ctx}"
            );
        }
    }
}

/// Applies one op to both tables and asserts the *results* match too —
/// including grant order, which neutral bias must preserve exactly.
fn apply_both(f: &mut FifoTable<u32>, q: &mut QueueTable<u32>, op: Op) {
    match op {
        Op::Request { e, o, exclusive } => {
            let m = if exclusive { X } else { S };
            let rf = f.request(EntityId(e), o, m);
            let rq = q.request(EntityId(e), o, m);
            assert_eq!(
                format!("{rf:?}"),
                format!("{rq:?}"),
                "request outcome diverged on {op:?}"
            );
        }
        Op::RequestPrio {
            e,
            o,
            exclusive,
            scheme,
        } => {
            let m = if exclusive { X } else { S };
            let rf = f.request_with_priority(EntityId(e), o, m, scheme, prio);
            let rq = q.request_with_priority(EntityId(e), o, m, scheme, prio);
            // Wound lists are sets (the caller aborts all of them), so
            // normalise through sorting before comparing.
            let norm = |r: Result<kplock::dlm::PreventionOutcome<u32>, _>| match r {
                Ok(kplock::dlm::PreventionOutcome::Wounded(mut v)) => {
                    v.sort_unstable();
                    format!("Wounded({v:?})")
                }
                other => format!("{other:?}"),
            };
            assert_eq!(norm(rf), norm(rq), "prevention outcome diverged on {op:?}");
        }
        Op::Release { e, o } => {
            let gf = f.release_idempotent(EntityId(e), o);
            let gq = q.release_idempotent(EntityId(e), o);
            assert_eq!(gf, gq, "grant order diverged on {op:?}");
        }
        Op::Cancel { o } => {
            let cf = f.cancel_waits(o);
            let cq = q.cancel_waits(o);
            assert_eq!(
                format!("{cf:?}"),
                format!("{cq:?}"),
                "cancel outcome diverged on {op:?}"
            );
        }
        Op::ReleaseAll { o } => {
            let gf = f.release_all(o);
            let gq = q.release_all(o);
            assert_eq!(
                format!("{gf:?}"),
                format!("{gq:?}"),
                "release_all grants diverged on {op:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The core differential: arbitrary op streams leave both tables in
    /// indistinguishable states at *every* step, not just at the end.
    #[test]
    fn neutral_queue_table_is_observationally_fifo(seed in 0u64..u64::MAX, len in 1usize..60) {
        let ops = gen_ops(seed, len);
        let mut f: FifoTable<u32> = FifoTable::new();
        let mut q: QueueTable<u32> = QueueTable::new();
        for (i, &op) in ops.iter().enumerate() {
            apply_both(&mut f, &mut q, op);
            assert_same_state(&f, &q, &format!("op {i} = {op:?}"));
        }
    }
}

/// All six resolution arms on a shared fixed workload; the sim must not
/// be able to tell the tables apart: identical metrics, identical
/// per-transaction commit epochs, identical outcome.
#[test]
fn sim_runs_identically_on_both_tables_across_all_six_arms() {
    const ARMS: [DeadlockResolution; 6] = [
        DeadlockResolution::Detect(DeadlockDetection::Periodic),
        DeadlockResolution::Detect(DeadlockDetection::OnBlock),
        DeadlockResolution::Detect(DeadlockDetection::Probe),
        DeadlockResolution::Prevent(PreventionScheme::WoundWait),
        DeadlockResolution::Prevent(PreventionScheme::WaitDie),
        DeadlockResolution::Prevent(PreventionScheme::NoWait),
    ];
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    for res in ARMS {
        let mk = |table| SimConfig {
            latency: LatencyModel::Uniform(1, 20),
            seed: 7,
            resolution: res,
            table,
            ..Default::default()
        };
        let rf = run(&sys, &mk(TableSpec::Fifo)).unwrap();
        let rq = run(&sys, &mk(TableSpec::queue())).unwrap();
        assert_eq!(rf.metrics, rq.metrics, "metrics diverged under {res:?}");
        assert_eq!(
            rf.committed_epoch, rq.committed_epoch,
            "commit epochs diverged under {res:?}"
        );
        assert_eq!(rf.outcome, rq.outcome, "outcome diverged under {res:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same equivalence over random seeds and a lossy fault plan, with
    /// the per-event invariant audit armed on both runs — a divergence
    /// *or* a structural violation fails at the offending tick.
    #[test]
    fn lossy_sim_equivalence_with_invariant_audit(
        wl_seed in 0u64..500,
        sim_seed in 0u64..500,
        arm in 0usize..6,
    ) {
        const ARMS: [DeadlockResolution; 6] = [
            DeadlockResolution::Detect(DeadlockDetection::Periodic),
            DeadlockResolution::Detect(DeadlockDetection::OnBlock),
            DeadlockResolution::Detect(DeadlockDetection::Probe),
            DeadlockResolution::Prevent(PreventionScheme::WoundWait),
            DeadlockResolution::Prevent(PreventionScheme::WaitDie),
            DeadlockResolution::Prevent(PreventionScheme::NoWait),
        ];
        let sys = random_system(&WorkloadParams {
            seed: wl_seed,
            sites: 2,
            entities_per_site: 2,
            transactions: 3,
            steps_per_txn: 5,
            strategy: LockStrategy::TwoPhaseSync,
            ..Default::default()
        });
        let mk = |table| SimConfig {
            latency: LatencyModel::Uniform(1, 10),
            seed: sim_seed,
            resolution: ARMS[arm],
            faults: FaultPlan::lossy(sim_seed.wrapping_add(1), 0.05, 0.02, 0.10),
            invariant_audit: true,
            table,
            ..Default::default()
        };
        let rf = run(&sys, &mk(TableSpec::Fifo)).unwrap();
        let rq = run(&sys, &mk(TableSpec::queue())).unwrap();
        prop_assert_eq!(&rf.metrics, &rq.metrics, "metrics diverged under {:?}", ARMS[arm]);
        prop_assert_eq!(&rf.committed_epoch, &rq.committed_epoch);
        prop_assert_eq!(rf.outcome, rq.outcome);
    }
}

/// Liveness of the bias arms: whatever order a biased table picks, every
/// queued waiter must be granted by the time the table drains — no
/// waiter may be starved *forever* in a finite release sequence.
#[test]
fn biased_tables_grant_every_waiter_when_drained() {
    for bias in [Bias::ReaderBatch, Bias::WriterPreference] {
        let mut q: QueueTable<u32> = QueueTable::new().with_bias(bias);
        let e = EntityId(0);
        assert_eq!(q.request(e, 0, X).unwrap(), kplock::dlm::Acquire::Granted);
        // A mixed queue: readers on odd ids, writers on even.
        for o in 1..=6u32 {
            let m = if o % 2 == 1 { S } else { X };
            assert_eq!(q.request(e, o, m).unwrap(), kplock::dlm::Acquire::Queued);
        }
        let mut granted: Vec<u32> = Vec::new();
        let mut rounds = 0;
        while !q.is_idle() {
            rounds += 1;
            assert!(rounds < 100, "{bias:?}: table failed to drain");
            for (o, _) in q.holders(e) {
                for (newly, _) in q.release_idempotent(e, o) {
                    granted.push(newly);
                }
            }
        }
        granted.sort_unstable();
        assert_eq!(
            granted,
            vec![1, 2, 3, 4, 5, 6],
            "{bias:?}: some waiter was never granted"
        );
        q.check_invariants().unwrap();
    }
}

/// A scenario crafted so a biased table *would* deviate (readers queued
/// on both sides of a writer): neutral bias must reproduce FIFO's grant
/// order exactly, release by release.
#[test]
fn neutral_bias_preserves_exact_fifo_grant_order() {
    let mut f: FifoTable<u32> = FifoTable::new();
    let mut q: QueueTable<u32> = QueueTable::new(); // Bias::Neutral
    let e = EntityId(0);
    // Holder 0 takes X; queue behind it: R1, W2, R3, R4 — ReaderBatch
    // would batch {1, 3, 4} and WriterPreference would serve 2 first;
    // FIFO grants 1, then 2, then the compatible prefix {3, 4} together.
    for (o, exclusive) in [(0, true), (1, false), (2, true), (3, false), (4, false)] {
        apply_both(&mut f, &mut q, Op::Request { e: 0, o, exclusive });
    }
    let seq = [
        (0, vec![(1, S)]),
        (1, vec![(2, X)]),
        (2, vec![(3, S), (4, S)]),
    ];
    for (o, want) in seq {
        let gf = f.release(e, o).unwrap();
        let gq = q.release(e, o).unwrap();
        assert_eq!(gf, want, "fifo grant order");
        assert_eq!(gq, want, "neutral queue table must match FIFO exactly");
    }
    assert_eq!(f.release_all(3), q.release_all(3));
    assert_eq!(f.release_all(4), q.release_all(4));
    assert!(f.is_idle() && q.is_idle());
}
