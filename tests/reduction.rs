//! Integration: Theorem 3 end-to-end — `F` satisfiable ⟺ `{T1(F), T2(F)}`
//! unsafe — validated with DPLL, the dominator-closure prover, and (on the
//! smallest instances) the full multisite procedure.

use kplock::core::closure::try_unsafety_via_dominator;
use kplock::core::reduction::reduce;
use kplock::core::{decide_multisite, MultisiteOptions, SafetyVerdict};
use kplock::graph::enumerate_dominators;
use kplock::model::{EntityId, Level, TxnId};
use kplock::sat::{solve, to_restricted_form, SatResult};
use kplock::workload::{random_instance, unsat_restricted};

#[test]
fn constructed_transactions_are_well_formed() {
    for seed in 0..20 {
        let f = random_instance(seed, 5, 4);
        let r = reduce(&f).unwrap();
        r.sys.validate(Level::Strict).unwrap();
        assert!(r.verify_intended(), "seed {seed}: D != intended");
    }
}

#[test]
fn satisfiable_iff_some_dominator_closes() {
    // Exhaustively enumerate the dominators of small instances and compare
    // "some dominator yields a verified certificate" with DPLL.
    for seed in 0..25 {
        let f = random_instance(seed, 4, 3);
        let r = reduce(&f).unwrap();
        let d = r.d_graph();
        let (doms, exhaustive) = enumerate_dominators(&d.graph, 100_000);
        assert!(exhaustive, "seed {seed}");
        let any_certificate = doms.iter().any(|bits| {
            let dom: Vec<EntityId> = bits.iter().map(|i| d.entities[i]).collect();
            try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom).is_some()
        });
        let sat = solve(&f).is_sat();
        assert_eq!(
            any_certificate, sat,
            "seed {seed}: Theorem 3 equivalence violated for {f:?}"
        );
    }
}

#[test]
fn desirable_dominators_close_and_undesirable_fail() {
    for seed in 0..15 {
        let f = random_instance(seed, 5, 4);
        let r = reduce(&f).unwrap();
        let d = r.d_graph();
        let (doms, _) = enumerate_dominators(&d.graph, 4_096);
        for bits in &doms {
            let dom: Vec<EntityId> = bits.iter().map(|i| d.entities[i]).collect();
            let cert = try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom);
            assert_eq!(
                cert.is_some(),
                r.is_desirable(&dom),
                "seed {seed}: dominator/closure mismatch"
            );
            if let Some(c) = cert {
                c.verify(&r.sys).unwrap();
            }
        }
    }
}

#[test]
fn unsat_instance_resists_all_closure_attempts() {
    let f = unsat_restricted();
    let r = reduce(&f).unwrap();
    assert!(r.verify_intended());
    let d = r.d_graph();
    // The instance has many dominators (2^middle-SCCs); sample within cap.
    let (doms, _) = enumerate_dominators(&d.graph, 3_000);
    for bits in &doms {
        let dom: Vec<EntityId> = bits.iter().map(|i| d.entities[i]).collect();
        assert!(
            try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom).is_none(),
            "an UNSAT instance must not admit a certificate"
        );
    }
}

#[test]
fn multisite_procedure_on_reduction_instances() {
    // Without the oracle (the instances are far beyond exhaustive search),
    // the multisite procedure must say Unsafe exactly when SAT — via
    // dominator closure — and Unknown when UNSAT.
    let opts = MultisiteOptions {
        dominator_cap: 100_000,
        oracle: None,
    };
    for seed in [3, 7, 11] {
        let f = random_instance(seed, 4, 3);
        let r = reduce(&f).unwrap();
        let verdict = decide_multisite(&r.sys, TxnId(0), TxnId(1), &opts);
        match solve(&f) {
            SatResult::Sat(_) => {
                let cert = verdict.certificate().expect("SAT => certificate");
                cert.verify(&r.sys).unwrap();
            }
            SatResult::Unsat => {
                assert!(
                    matches!(verdict, SafetyVerdict::Unknown),
                    "UNSAT instances are safe but unprovably so without the oracle"
                );
            }
        }
    }
}

#[test]
fn restricted_form_conversion_composes_with_reduction() {
    // Arbitrary small CNF -> restricted form -> reduction; satisfiability
    // must be preserved through both hops.
    let raw = kplock::sat::Cnf::from_clauses(
        4,
        &[
            &[(0, true), (1, true), (2, true), (3, true)],
            &[(0, false), (1, false)],
            &[(2, false), (3, true)],
            &[(0, true), (2, true)],
        ],
    );
    let restricted = to_restricted_form(&raw);
    assert!(restricted.decided.is_none());
    assert!(restricted.cnf.is_restricted_form());
    let r = reduce(&restricted.cnf).unwrap();
    assert!(r.verify_intended());
    let sat = solve(&raw).is_sat();
    assert_eq!(solve(&restricted.cnf).is_sat(), sat);
    if let SatResult::Sat(model) = solve(&restricted.cnf) {
        let dom = r.dominator_for_assignment(&model);
        let cert = try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom)
            .expect("model gives a certificate");
        cert.verify(&r.sys).unwrap();
    }
}
