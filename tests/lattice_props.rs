//! Algebraic laws of the multi-granularity mode lattice, and a
//! differential proof that both lock-table implementations agree on
//! arbitrary seeded streams over **all five** modes.
//!
//! The lattice (`IS < IX/S < SIX < X`, with `join` the least upper
//! bound) is small enough to check its laws exhaustively — every
//! property below quantifies over all 5, 25, or 125 mode combinations
//! rather than sampling. The table differential is the same
//! observational-equivalence harness as `tests/table_equivalence.rs`,
//! widened from S/X to the full mode alphabet so intention and `SIX`
//! traffic exercises the upgrade-via-join paths in both tables.

use kplock::dlm::{FifoTable, LockTable, PreventionScheme, QueueTable};
use kplock::model::{EntityId, LockMode};
use proptest::prelude::*;

const MODES: [LockMode; 5] = LockMode::ALL;

/// The compatibility matrix is symmetric: conflicts have no direction.
#[test]
fn compatibility_matrix_is_symmetric() {
    for a in MODES {
        for b in MODES {
            assert_eq!(
                a.compatible_with(b),
                b.compatible_with(a),
                "asymmetry at {a}/{b}"
            );
        }
    }
}

/// A stronger mode is compatible with *less*: if `a` covers `b`, then
/// anything `a` tolerates, `b` tolerates too. This is what makes
/// granting a covering lock instead of the requested one always safe.
#[test]
fn covers_implies_compatibility_subsumption() {
    for a in MODES {
        for b in MODES {
            if !a.covers(b) {
                continue;
            }
            for m in MODES {
                assert!(
                    !a.compatible_with(m) || b.compatible_with(m),
                    "{a} covers {b} but is compatible with {m} while {b} is not"
                );
            }
        }
    }
}

/// `join` is a semilattice operation: commutative, associative, and
/// idempotent, with `covers` as its induced partial order.
#[test]
fn join_is_a_semilattice() {
    for a in MODES {
        assert_eq!(a.join(a), a, "join not idempotent at {a}");
        for b in MODES {
            assert_eq!(a.join(b), b.join(a), "join not commutative at {a}/{b}");
            // Absorption: the join covers both arguments...
            let j = a.join(b);
            assert!(
                j.covers(a) && j.covers(b),
                "join({a},{b}) = {j} covers neither"
            );
            // ...and is the *least* such mode.
            for c in MODES {
                if c.covers(a) && c.covers(b) {
                    assert!(c.covers(j), "{c} covers {a},{b} but not join {j}");
                }
            }
            for c in MODES {
                assert_eq!(
                    a.join(b).join(c),
                    a.join(b.join(c)),
                    "join not associative at {a}/{b}/{c}"
                );
            }
        }
    }
}

/// `covers` is exactly the order induced by `join` — the definition the
/// lock tables rely on when deciding whether a held mode already
/// satisfies a new request.
#[test]
fn covers_agrees_with_join_order() {
    for a in MODES {
        for b in MODES {
            assert_eq!(
                a.covers(b),
                a.join(b) == a,
                "covers/join disagree at {a}/{b}"
            );
        }
    }
}

/// Upgrading via `join(held, requested)` never *skips* a conflict: the
/// upgrade target conflicts with everything either the held or the
/// requested mode conflicts with. A waiter that would have blocked the
/// plain request still blocks the upgrade, so admission through the
/// upgrade path can never admit a schedule the direct path would refuse.
#[test]
fn upgrade_via_join_never_skips_a_conflict() {
    for held in MODES {
        for req in MODES {
            let target = held.join(req);
            for other in MODES {
                if !req.compatible_with(other) || !held.compatible_with(other) {
                    assert!(
                        !target.compatible_with(other),
                        "join({held},{req}) = {target} dropped the conflict with {other}"
                    );
                }
            }
        }
    }
}

/// Shield strength is monotone in the lattice: a covering parent mode
/// shields at least the child accesses the covered one shields.
#[test]
fn shielding_is_monotone_under_covers() {
    for a in MODES {
        for b in MODES {
            if !a.covers(b) {
                continue;
            }
            for access in MODES {
                assert!(
                    !b.shields_child(access) || a.shields_child(access),
                    "{a} covers {b} but shields less ({access})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Full-alphabet table differential.
// ---------------------------------------------------------------------

const ENTITIES: u32 = 3;
const OWNERS: u32 = 4;

#[derive(Clone, Copy, Debug)]
enum Op {
    Request {
        e: u32,
        o: u32,
        mode: LockMode,
    },
    RequestPrio {
        e: u32,
        o: u32,
        mode: LockMode,
        scheme: PreventionScheme,
    },
    Release {
        e: u32,
        o: u32,
    },
    Cancel {
        o: u32,
    },
    ReleaseAll {
        o: u32,
    },
}

/// Seeded op stream over the full five-mode alphabet; heavier on
/// requests than releases so upgrade queues actually form.
fn gen_ops(seed: u64, len: usize) -> Vec<Op> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let schemes = [
        PreventionScheme::WoundWait,
        PreventionScheme::WaitDie,
        PreventionScheme::NoWait,
    ];
    (0..len)
        .map(|_| {
            let e = rng.gen_range(0..ENTITIES);
            let o = rng.gen_range(0..OWNERS);
            let mode = MODES[rng.gen_range(0..5usize)];
            match rng.gen_range(0u8..10) {
                0..=3 => Op::Request { e, o, mode },
                4..=5 => Op::RequestPrio {
                    e,
                    o,
                    mode,
                    scheme: schemes[rng.gen_range(0..3usize)],
                },
                6..=7 => Op::Release { e, o },
                8 => Op::Cancel { o },
                _ => Op::ReleaseAll { o },
            }
        })
        .collect()
}

fn prio(o: u32) -> (u64, u64) {
    (u64::from(o), 0)
}

fn assert_same_state(f: &FifoTable<u32>, q: &QueueTable<u32>, ctx: &str) {
    f.check_invariants()
        .unwrap_or_else(|e| panic!("fifo invariants after {ctx}: {e}"));
    q.check_invariants()
        .unwrap_or_else(|e| panic!("queue invariants after {ctx}: {e}"));
    let sorted = |mut v: Vec<(u32, u32)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(
        sorted(f.waits_for()),
        sorted(q.waits_for()),
        "waits_for diverged after {ctx}"
    );
    for e in 0..ENTITIES {
        let e = EntityId(e);
        let mut hf = f.holders(e);
        let mut hq = q.holders(e);
        hf.sort_unstable();
        hq.sort_unstable();
        assert_eq!(hf, hq, "holders({e:?}) diverged after {ctx}");
        for o in 0..OWNERS {
            assert_eq!(f.holds(e, o), q.holds(e, o), "holds({e:?},{o}) after {ctx}");
            assert_eq!(
                f.is_waiting(e, o),
                q.is_waiting(e, o),
                "is_waiting({e:?},{o}) after {ctx}"
            );
        }
    }
}

fn apply_both(f: &mut FifoTable<u32>, q: &mut QueueTable<u32>, op: Op) {
    match op {
        Op::Request { e, o, mode } => {
            let rf = f.request(EntityId(e), o, mode);
            let rq = q.request(EntityId(e), o, mode);
            assert_eq!(
                format!("{rf:?}"),
                format!("{rq:?}"),
                "request outcome diverged on {op:?}"
            );
        }
        Op::RequestPrio { e, o, mode, scheme } => {
            let rf = f.request_with_priority(EntityId(e), o, mode, scheme, prio);
            let rq = q.request_with_priority(EntityId(e), o, mode, scheme, prio);
            let norm = |r: Result<kplock::dlm::PreventionOutcome<u32>, _>| match r {
                Ok(kplock::dlm::PreventionOutcome::Wounded(mut v)) => {
                    v.sort_unstable();
                    format!("Wounded({v:?})")
                }
                other => format!("{other:?}"),
            };
            assert_eq!(norm(rf), norm(rq), "prevention outcome diverged on {op:?}");
        }
        Op::Release { e, o } => {
            let gf = f.release_idempotent(EntityId(e), o);
            let gq = q.release_idempotent(EntityId(e), o);
            assert_eq!(gf, gq, "grant order diverged on {op:?}");
        }
        Op::Cancel { o } => {
            let cf = f.cancel_waits(o);
            let cq = q.cancel_waits(o);
            assert_eq!(
                format!("{cf:?}"),
                format!("{cq:?}"),
                "cancel outcome diverged on {op:?}"
            );
        }
        Op::ReleaseAll { o } => {
            let gf = f.release_all(o);
            let gq = q.release_all(o);
            assert_eq!(
                format!("{gf:?}"),
                format!("{gq:?}"),
                "release_all grants diverged on {op:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Both tables are observationally identical at every step of random
    /// streams drawn from the full IS/IX/S/SIX/X alphabet — including
    /// intention-mode pile-ups and SIX upgrades neither saw before the
    /// lattice refactor.
    #[test]
    fn tables_agree_on_full_mode_alphabet(seed in 0u64..u64::MAX, len in 1usize..70) {
        let ops = gen_ops(seed, len);
        let mut f: FifoTable<u32> = FifoTable::new();
        let mut q: QueueTable<u32> = QueueTable::new();
        for (i, &op) in ops.iter().enumerate() {
            apply_both(&mut f, &mut q, op);
            assert_same_state(&f, &q, &format!("op {i} = {op:?}"));
        }
    }
}

/// A hand-built upgrade ladder both tables must walk identically:
/// IS → S → SIX → X on one entity, with a concurrent IS holder forcing
/// the final step to queue until the reader leaves.
#[test]
fn upgrade_ladder_is_identical_on_both_tables() {
    use kplock::dlm::Acquire;
    let (mut f, mut q): (FifoTable<u32>, QueueTable<u32>) = (FifoTable::new(), QueueTable::new());
    let e = EntityId(0);
    for t in [
        &mut f as &mut dyn LockTable<u32>,
        &mut q as &mut dyn LockTable<u32>,
    ] {
        assert_eq!(
            t.acquire(e, 1, LockMode::IntentionShared).unwrap(),
            Acquire::Granted
        );
        assert_eq!(
            t.acquire(e, 2, LockMode::IntentionShared).unwrap(),
            Acquire::Granted
        );
        // 1 strengthens to S (compatible with 2's IS), then to SIX
        // (still compatible), then X must wait for 2.
        assert_eq!(t.acquire(e, 1, LockMode::Shared).unwrap(), Acquire::Granted);
        assert_eq!(
            t.acquire(e, 1, LockMode::SharedIntentionExclusive).unwrap(),
            Acquire::Granted
        );
        assert_eq!(t.holds(e, 1), Some(LockMode::SharedIntentionExclusive));
        assert_eq!(
            t.acquire(e, 1, LockMode::Exclusive).unwrap(),
            Acquire::Queued
        );
        let grants = t.release(e, 2).unwrap();
        assert_eq!(grants, vec![(1, LockMode::Exclusive)]);
        assert_eq!(t.holds(e, 1), Some(LockMode::Exclusive));
        t.release_all(1);
        assert!(t.is_idle());
        t.check_invariants().unwrap();
    }
}
