//! Fixed-seed regression pins for the discrete-event simulator.
//!
//! The engine's default path (exclusive locks, FIFO grants, periodic
//! deadlock scan) must stay *bit-identical* across refactors of the lock
//! table: the paper-reproduction experiments depend on exact replay. Each
//! test here pins the full `Metrics` of a deterministic run; if one fails
//! after an intentional semantic change, re-derive the constants with the
//! printed actual values and justify the change in the PR.

use kplock_core::policy::LockStrategy;
use kplock_sim::{
    run, Delegation, FaultPlan, LatencyModel, Metrics, PreventionScheme, RunOutcome, SimConfig,
    SiteCrash, VictimPolicy,
};
use kplock_workload::{avoid_mix_sweep, fault_plan_ladder, fig5, random_system, WorkloadParams};

fn metrics(m: &Metrics) -> (usize, usize, u64, u64, usize, u64) {
    (
        m.committed,
        m.aborts,
        m.messages,
        m.lock_wait_ticks,
        m.deadlocks_resolved,
        m.makespan,
    )
}

#[test]
fn fixed_seed_random_system_is_pinned() {
    let sys = random_system(&WorkloadParams {
        seed: 21,
        sites: 3,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 20),
        seed: 7,
        ..Default::default()
    };
    let r = run(&sys, &cfg).expect("valid config");
    assert!(r.finished());
    assert_eq!(
        metrics(&r.metrics),
        PIN_RANDOM,
        "actual: {:?}",
        metrics(&r.metrics)
    );
}

#[test]
fn fixed_seed_deadlock_prone_run_is_pinned() {
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cfg = SimConfig {
        latency: LatencyModel::Fixed(5),
        victim_policy: VictimPolicy::Oldest,
        ..Default::default()
    };
    let r = run(&sys, &cfg).expect("valid config");
    assert!(r.finished());
    assert_eq!(
        metrics(&r.metrics),
        PIN_DEADLOCK,
        "actual: {:?}",
        metrics(&r.metrics)
    );
}

#[test]
fn fixed_seed_fig5_run_is_pinned() {
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 9),
        seed: 3,
        ..Default::default()
    };
    let r = run(&fig5(), &cfg).expect("valid config");
    assert!(r.finished());
    assert!(r.audit.serializable, "fig5 is safe");
    assert_eq!(
        metrics(&r.metrics),
        PIN_FIG5,
        "actual: {:?}",
        metrics(&r.metrics)
    );
}

#[test]
fn fixed_seed_prevention_runs_are_pinned() {
    // The same seed-23 workload as PIN_DEADLOCK, run under each
    // prevention scheme. Wound-wait lands bit-identical to the detection
    // pin — on this workload every admitted wait already points young →
    // old, so nothing is ever wounded — while wait-die and no-wait trade
    // waiting (fewer lock-wait ticks) for restarts. Pinning all three
    // keeps the prevention path as replay-stable as the default one.
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    for (scheme, pin) in [
        (PreventionScheme::WoundWait, PIN_WOUND_WAIT),
        (PreventionScheme::WaitDie, PIN_WAIT_DIE),
        (PreventionScheme::NoWait, PIN_NO_WAIT),
    ] {
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            resolution: scheme.into(),
            ..Default::default()
        };
        let r = run(&sys, &cfg).expect("valid config");
        assert!(r.finished(), "{scheme:?}");
        assert_eq!(r.metrics.deadlocks_resolved, 0, "{scheme:?}");
        assert_eq!(r.metrics.prevention_restarts, r.metrics.aborts);
        assert_eq!(
            metrics(&r.metrics),
            pin,
            "{scheme:?} actual: {:?}",
            metrics(&r.metrics)
        );
    }
}

#[test]
fn fixed_avoidance_runs_are_pinned() {
    // The RNG-free certified-mix family at Fixed(5): the fully certified
    // rung (avoidance's Theorem-level regime — zero aborts by contract)
    // and a half-certified rung whose fallback half is metered by
    // wound-wait. Both runs are deterministic, so the full metric tuples
    // pin exact replay of the avoidance arm like the arms above.
    let sweep = avoid_mix_sweep(4, 4, 2, &[4, 2]);
    for (sc, pin) in sweep.iter().zip([PIN_AVOID_FULL, PIN_AVOID_MIXED]) {
        let r = run(&sc.system, &sc.config(5)).expect("valid config");
        assert!(r.finished(), "{}", sc.name);
        assert_eq!(r.metrics.deadlocks_resolved, 0, "{}", sc.name);
        assert_eq!(r.metrics.avoid_certified, sc.certified, "{}", sc.name);
        assert_eq!(
            metrics(&r.metrics),
            pin,
            "{} actual: {:?}",
            sc.name,
            metrics(&r.metrics)
        );
    }
}

#[test]
fn pinned_mixed_avoidance_run_survives_the_fault_ladder() {
    // The PIN_AVOID_MIXED scenario re-run under the loss and duplication
    // rungs of the canonical fault ladder, with the per-step lock-table
    // invariant audit on: faulty channels may reorder the fallback's
    // wounds but must never let a cycle through the certificate or
    // corrupt a table. (Outcome-shape assertions, not metric pins — the
    // point is safety under faults, and the clean-run pin above already
    // guards replay.)
    let sc = &avoid_mix_sweep(4, 4, 2, &[2])[0];
    for (name, faults) in fault_plan_ladder(97, &[0.15], 0.20) {
        if !(name.starts_with("loss=") || name.starts_with("dup=")) {
            continue;
        }
        let cfg = SimConfig {
            faults,
            invariant_audit: true,
            max_time: 400_000,
            ..sc.config(5)
        };
        let r = run(&sc.system, &cfg).expect("valid config");
        assert_ne!(r.outcome, RunOutcome::Stalled, "{name}");
        assert_eq!(r.metrics.deadlocks_resolved, 0, "{name}");
        assert_eq!(r.metrics.probe_messages, 0, "{name}");
        if r.outcome == RunOutcome::Completed {
            assert!(r.audit.serializable, "{name}");
        }
    }
}

#[test]
fn fixed_seed_delegated_run_is_pinned() {
    // The PIN_RANDOM workload re-run with delegated ownership on: the
    // full metric tuple plus the delegation counters pin the cached
    // fast path, the revocation protocol and the what-if accounting.
    // (`Delegation::Off` needs no twin pin — it is the default every
    // other test in this file already runs.)
    let sys = random_system(&WorkloadParams {
        seed: 21,
        sites: 3,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 20),
        seed: 7,
        delegation: Delegation::On,
        invariant_audit: true,
        ..Default::default()
    };
    let r = run(&sys, &cfg).expect("valid config");
    assert!(r.finished());
    assert!(r.audit.serializable);
    let deleg = |m: &Metrics| {
        (
            m.lock_traffic,
            m.cache_hits,
            m.revocations,
            m.messages_saved,
        )
    };
    assert_eq!(
        (metrics(&r.metrics), deleg(&r.metrics)),
        PIN_DELEGATED,
        "actual: {:?}",
        (metrics(&r.metrics), deleg(&r.metrics))
    );
    // The cache never sends what it saves: saved messages are not in the
    // wire count, so On strictly undercuts the Off pin's total.
    assert!(r.metrics.messages < PIN_RANDOM.2);
}

#[test]
fn duplicated_grants_never_extend_leases_under_the_dup_heavy_ladder() {
    // Satellite regression: a duplicated grant message re-lands at the
    // lease table and must NOT slide the renewal clock — the lease keys
    // off the original grant. Dup-heavy channels plus a crash that
    // outlives the ttl make the distinction observable: with the old
    // sliding clock, lucky duplicates "renew" doomed leases just before
    // the outage and rescue holders that rightly expire, deflating
    // `leases_expired`. The exact count (and completion) is pinned for
    // both delegation modes.
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    for (delegation, pin) in [
        (Delegation::Off, PIN_DUP_LEASES_OFF),
        (Delegation::On, PIN_DUP_LEASES_ON),
    ] {
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            delegation,
            invariant_audit: true,
            faults: FaultPlan {
                seed: 11,
                duplication: 0.8,
                reorder_window: 6,
                retransmit_after: 80,
                lease_ttl: 40,
                crashes: vec![SiteCrash {
                    site: 0,
                    at: 30,
                    down_for: 90,
                }],
                ..FaultPlan::none()
            },
            max_time: 500_000,
            ..Default::default()
        };
        let r = run(&sys, &cfg).expect("valid config");
        assert_eq!(r.outcome, RunOutcome::Completed, "{delegation:?}");
        assert!(r.audit.serializable, "{delegation:?}");
        assert!(r.metrics.messages_duplicated > 0, "dup must bite");
        assert_eq!(r.metrics.recoveries, 1, "{delegation:?}");
        assert_eq!(
            (r.metrics.leases_expired, r.metrics.committed),
            pin,
            "{delegation:?} actual: {:?}",
            (r.metrics.leases_expired, r.metrics.committed)
        );
        assert!(
            r.metrics.leases_expired >= 1,
            "{delegation:?}: a 90-tick outage must outlive a 40-tick lease"
        );
    }
}

// Pinned values, captured from the seed engine before the kplock-dlm
// lock-table refactor (PR 2) and required to survive it unchanged.
const PIN_RANDOM: (usize, usize, u64, u64, usize, u64) = (4, 1, 122, 875, 1, 402);
const PIN_DEADLOCK: (usize, usize, u64, u64, usize, u64) = (4, 0, 100, 660, 0, 250);
const PIN_FIG5: (usize, usize, u64, u64, usize, u64) = (2, 0, 48, 54, 0, 53);

// Prevention pins (PR 4): (committed, aborts, messages, lock_wait_ticks,
// deadlocks_resolved, makespan) on the seed-23 workload at Fixed(5).
const PIN_WOUND_WAIT: (usize, usize, u64, u64, usize, u64) = (4, 0, 100, 660, 0, 250);
const PIN_WAIT_DIE: (usize, usize, u64, u64, usize, u64) = (4, 9, 136, 80, 0, 287);
const PIN_NO_WAIT: (usize, usize, u64, u64, usize, u64) = (4, 10, 140, 0, 0, 293);

// Avoidance pins (PR 7): the certified-mix family (4 entities over 2
// sites, 4 transactions) at Fixed(5) — fully certified, then half.
const PIN_AVOID_FULL: (usize, usize, u64, u64, usize, u64) = (4, 0, 96, 480, 0, 360);
const PIN_AVOID_MIXED: (usize, usize, u64, u64, usize, u64) = (4, 5, 118, 329, 0, 400);

// Delegation pins (PR 10): the PIN_RANDOM workload with delegated
// ownership on — the base tuple plus
// (lock_traffic, cache_hits, revocations, messages_saved).
#[allow(clippy::type_complexity)]
const PIN_DELEGATED: ((usize, usize, u64, u64, usize, u64), (u64, u64, u64, u64)) =
    ((4, 1, 111, 1135, 1, 439), (61, 15, 10, 24));

// Satellite pins (PR 10): (leases_expired, committed) on the seed-23
// workload under dup=0.8 channels and a 90-tick outage against a
// 40-tick lease ttl, per delegation mode.
const PIN_DUP_LEASES_OFF: (usize, usize) = (2, 4);
const PIN_DUP_LEASES_ON: (usize, usize) = (2, 4);
