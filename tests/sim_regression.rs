//! Fixed-seed regression pins for the discrete-event simulator.
//!
//! The engine's default path (exclusive locks, FIFO grants, periodic
//! deadlock scan) must stay *bit-identical* across refactors of the lock
//! table: the paper-reproduction experiments depend on exact replay. Each
//! test here pins the full `Metrics` of a deterministic run; if one fails
//! after an intentional semantic change, re-derive the constants with the
//! printed actual values and justify the change in the PR.

use kplock_core::policy::LockStrategy;
use kplock_sim::{run, LatencyModel, Metrics, SimConfig, VictimPolicy};
use kplock_workload::{fig5, random_system, WorkloadParams};

fn metrics(m: &Metrics) -> (usize, usize, u64, u64, usize, u64) {
    (
        m.committed,
        m.aborts,
        m.messages,
        m.lock_wait_ticks,
        m.deadlocks_resolved,
        m.makespan,
    )
}

#[test]
fn fixed_seed_random_system_is_pinned() {
    let sys = random_system(&WorkloadParams {
        seed: 21,
        sites: 3,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 20),
        seed: 7,
        ..Default::default()
    };
    let r = run(&sys, &cfg).expect("valid config");
    assert!(r.finished());
    assert_eq!(
        metrics(&r.metrics),
        PIN_RANDOM,
        "actual: {:?}",
        metrics(&r.metrics)
    );
}

#[test]
fn fixed_seed_deadlock_prone_run_is_pinned() {
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cfg = SimConfig {
        latency: LatencyModel::Fixed(5),
        victim_policy: VictimPolicy::Oldest,
        ..Default::default()
    };
    let r = run(&sys, &cfg).expect("valid config");
    assert!(r.finished());
    assert_eq!(
        metrics(&r.metrics),
        PIN_DEADLOCK,
        "actual: {:?}",
        metrics(&r.metrics)
    );
}

#[test]
fn fixed_seed_fig5_run_is_pinned() {
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 9),
        seed: 3,
        ..Default::default()
    };
    let r = run(&fig5(), &cfg).expect("valid config");
    assert!(r.finished());
    assert!(r.audit.serializable, "fig5 is safe");
    assert_eq!(
        metrics(&r.metrics),
        PIN_FIG5,
        "actual: {:?}",
        metrics(&r.metrics)
    );
}

// Pinned values, captured from the seed engine before the kplock-dlm
// lock-table refactor (PR 2) and required to survive it unchanged.
const PIN_RANDOM: (usize, usize, u64, u64, usize, u64) = (4, 1, 122, 875, 1, 402);
const PIN_DEADLOCK: (usize, usize, u64, u64, usize, u64) = (4, 0, 100, 660, 0, 250);
const PIN_FIG5: (usize, usize, u64, u64, usize, u64) = (2, 0, 48, 54, 0, 53);
