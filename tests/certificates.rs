//! Failure injection: tampered certificates must fail verification.
//!
//! The decision procedures are only trustworthy because every `Unsafe`
//! verdict is re-checked; these tests establish that the checker actually
//! rejects each way a certificate can be wrong.

use kplock::core::{decide_two_site_system, CertificateError, UnsafetyCertificate};
use kplock::model::{Schedule, ScheduledStep, TxnId, TxnSystem};
use kplock::workload::fig1;

fn unsafe_cert() -> (TxnSystem, UnsafetyCertificate) {
    let sys = fig1();
    let v = decide_two_site_system(&sys).unwrap();
    let cert = v.certificate().expect("fig1 unsafe").clone();
    cert.verify(&sys).expect("pristine certificate verifies");
    (sys, cert)
}

#[test]
fn truncated_schedule_rejected() {
    let (sys, mut cert) = unsafe_cert();
    let steps = cert.schedule.steps().to_vec();
    cert.schedule = Schedule::new(steps[..steps.len() - 1].to_vec());
    assert!(matches!(
        cert.verify(&sys),
        Err(CertificateError::BadSchedule(_))
    ));
}

#[test]
fn reordered_schedule_rejected() {
    let (sys, mut cert) = unsafe_cert();
    let mut steps = cert.schedule.steps().to_vec();
    steps.reverse(); // violates partial orders and lock discipline
    cert.schedule = Schedule::new(steps);
    assert!(matches!(
        cert.verify(&sys),
        Err(CertificateError::BadSchedule(_))
    ));
}

#[test]
fn serial_schedule_rejected() {
    let (sys, mut cert) = unsafe_cert();
    // Replace the witness with a perfectly serial (hence serializable)
    // schedule.
    let pair = kplock::core::certificate::pair_subsystem(&sys, cert.txn_a, cert.txn_b);
    let serial = Schedule::serial(&pair, &[TxnId(0), TxnId(1)]);
    cert.schedule = Schedule::new(
        serial
            .steps()
            .iter()
            .map(|ss| ScheduledStep {
                txn: if ss.txn == TxnId(0) {
                    cert.txn_a
                } else {
                    cert.txn_b
                },
                step: ss.step,
            })
            .collect(),
    );
    assert_eq!(
        cert.verify(&sys),
        Err(CertificateError::ScheduleSerializable)
    );
}

#[test]
fn empty_dominator_rejected() {
    let (sys, mut cert) = unsafe_cert();
    cert.dominator.clear();
    assert_eq!(cert.verify(&sys), Err(CertificateError::BadDominator));
}

#[test]
fn full_dominator_rejected() {
    let (sys, mut cert) = unsafe_cert();
    cert.dominator = sys.shared_locked_entities(cert.txn_a, cert.txn_b);
    assert_eq!(cert.verify(&sys), Err(CertificateError::BadDominator));
}

#[test]
fn foreign_entity_dominator_rejected() {
    let (sys, mut cert) = unsafe_cert();
    // An entity id beyond the shared set.
    cert.dominator = vec![kplock::model::EntityId(999)];
    assert_eq!(cert.verify(&sys), Err(CertificateError::BadDominator));
}

#[test]
fn bogus_extension_rejected() {
    let (sys, mut cert) = unsafe_cert();
    cert.t1_order.swap(0, 1); // Lx before its own site's earlier step
                              // Either it stops being a linear extension, or if steps were
                              // concurrent the certificate may still pass — fig1's first two steps
                              // are chained, so it must fail.
    assert_eq!(
        cert.verify(&sys),
        Err(CertificateError::NotALinearExtension(cert.txn_a))
    );
}

#[test]
fn duplicated_step_rejected() {
    let (sys, mut cert) = unsafe_cert();
    let first = cert.schedule.steps()[0];
    let mut steps = cert.schedule.steps().to_vec();
    steps.push(first);
    cert.schedule = Schedule::new(steps);
    assert!(matches!(
        cert.verify(&sys),
        Err(CertificateError::BadSchedule(_))
    ));
}
