//! Property harness for delegated lock ownership ([`Delegation::On`]):
//! the cached fast path, the revocation protocol and the crash wipe must
//! preserve every safety net the remote-only engine already passes.
//!
//! The core property is *equivalence*: on any workload, under any seeded
//! loss/duplication/reorder plan and any of the six resolution arms,
//! turning delegation on changes message counts — never outcomes. A run
//! that completes commits the same transaction set (all of them, by 2PL
//! completion), audits legal and conflict-serializable, and a run with
//! retransmission on never stalls: a lost or duplicated revocation must
//! be re-driven by the demander's retransmissions, not wedge the site.
//!
//! Liveness of the revocation path itself gets a dedicated storm test:
//! a chain of single-entity transactions in which every grant is
//! delegated and every successor must demand it back.

use kplock::core::policy::LockStrategy;
use kplock::model::{Database, TxnBuilder, TxnSystem};
use kplock::sim::{
    run, run_with_arrivals, DeadlockDetection, DeadlockResolution, Delegation, FaultPlan,
    LatencyModel, PreventionScheme, RunOutcome, SimConfig,
};
use kplock::workload::{random_system, WorkloadParams};
use proptest::prelude::*;

/// All six resolution arms: every detector and every preventer.
const SCHEMES: [DeadlockResolution; 6] = [
    DeadlockResolution::Detect(DeadlockDetection::Periodic),
    DeadlockResolution::Detect(DeadlockDetection::OnBlock),
    DeadlockResolution::Detect(DeadlockDetection::Probe),
    DeadlockResolution::Prevent(PreventionScheme::WoundWait),
    DeadlockResolution::Prevent(PreventionScheme::WaitDie),
    DeadlockResolution::Prevent(PreventionScheme::NoWait),
];

fn system(seed: u64, sites: usize, txns: usize, read_percent: u32) -> TxnSystem {
    random_system(&WorkloadParams {
        seed,
        sites,
        entities_per_site: 2,
        transactions: txns,
        steps_per_txn: 5,
        read_percent,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

fn check_pair(sys: &TxnSystem, base: &SimConfig, tag: &str) -> Result<(), TestCaseError> {
    // `run` panics on any invariant violation (the audit is on) or on an
    // abort of a committed transaction — both are the harness firing.
    let off = run(
        sys,
        &SimConfig {
            delegation: Delegation::Off,
            ..base.clone()
        },
    )
    .expect("valid config");
    let on = run(
        sys,
        &SimConfig {
            delegation: Delegation::On,
            ..base.clone()
        },
    )
    .expect("valid config");
    for (mode, r) in [("off", &off), ("on", &on)] {
        prop_assert!(
            r.metrics.committed <= sys.len(),
            "{tag} [{mode}]: a transaction committed twice"
        );
        if base.faults.retransmit_after > 0 {
            prop_assert_ne!(
                r.outcome,
                RunOutcome::Stalled,
                "{} [{}]: stalled with retransmission on",
                tag,
                mode
            );
        }
        if r.outcome == RunOutcome::Completed {
            prop_assert_eq!(r.metrics.committed, sys.len(), "{} [{}]", tag, mode);
            r.audit
                .legal
                .as_ref()
                .unwrap_or_else(|e| panic!("{tag} [{mode}]: illegal history: {e}"));
            prop_assert!(
                r.audit.serializable,
                "{} [{}]: committed history must stay serializable",
                tag,
                mode
            );
        }
    }
    // Equivalence: delegation changes the wire protocol, never what
    // commits. (Timeouts are honest under faults — only compare when
    // both runs finished inside the budget.)
    if on.outcome == RunOutcome::Completed && off.outcome == RunOutcome::Completed {
        prop_assert_eq!(
            on.metrics.committed,
            off.metrics.committed,
            "{}: modes disagree on the committed set",
            tag
        );
        prop_assert_eq!(
            on.metrics.aborts == 0,
            on.committed_epoch.iter().all(|e| *e == Some(0)),
            "{}: epoch bookkeeping is inconsistent",
            tag
        );
    }
    // The delegation counters only move when the knob is on.
    prop_assert_eq!(off.metrics.cache_hits, 0, "{}", tag);
    prop_assert_eq!(off.metrics.revocations, 0, "{}", tag);
    prop_assert_eq!(off.metrics.messages_saved, 0, "{}", tag);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 seeded loss/dup/reorder plans (rates up to 0.3), each run
    /// with delegation off and on under all six resolution arms: same
    /// committed outcomes, no stalls, clean audits everywhere.
    #[test]
    fn delegation_commits_the_same_set_under_channel_faults(
        wl_seed in 0u64..500,
        fault_seed in 0u64..1000,
        sim_seed in 0u64..100,
        loss_pm in 0u32..=300,
        dup_pm in 0u32..=300,
        reorder_pm in 0u32..=300,
        sites in 2usize..4,
        txns in 2usize..5,
        read_percent in 0u32..=50,
    ) {
        let sys = system(wl_seed, sites, txns, read_percent);
        let faults = FaultPlan {
            seed: fault_seed,
            loss: f64::from(loss_pm) / 1000.0,
            duplication: f64::from(dup_pm) / 1000.0,
            reorder: f64::from(reorder_pm) / 1000.0,
            reorder_window: 8,
            retransmit_after: 80,
            ..FaultPlan::none()
        };
        for resolution in SCHEMES {
            let base = SimConfig {
                seed: sim_seed,
                latency: LatencyModel::Fixed(4),
                resolution,
                invariant_audit: true,
                faults: faults.clone(),
                max_time: 300_000,
                ..Default::default()
            };
            check_pair(&sys, &base, &format!(
                "wl {wl_seed} faults {fault_seed} loss {loss_pm} dup {dup_pm} reorder {reorder_pm} under {resolution:?}"
            ))?;
        }
    }

    /// Crashes on top of lossy channels with delegation on: the wipe
    /// must clear the site ledger and the coordinator caches together,
    /// whatever the outage straddles — a delegated ack in flight, a
    /// pending revocation, a lease about to expire.
    #[test]
    fn delegated_runs_survive_crashes_with_lease_expiry(
        wl_seed in 0u64..300,
        fault_seed in 0u64..1000,
        crash_site in 0usize..2,
        crash_at in 10u64..200,
        down_for in 1u64..400,
        lease_ttl in 0u64..250,
        loss_pm in 0u32..=200,
        scheme_idx in 0usize..6,
    ) {
        let sys = system(wl_seed, 2, 3, 30);
        let faults = FaultPlan {
            seed: fault_seed,
            loss: f64::from(loss_pm) / 1000.0,
            duplication: 0.1,
            reorder: 0.1,
            reorder_window: 8,
            retransmit_after: 80,
            lease_ttl,
            crashes: vec![kplock::sim::SiteCrash { site: crash_site, at: crash_at, down_for }],
        };
        let base = SimConfig {
            latency: LatencyModel::Fixed(4),
            resolution: SCHEMES[scheme_idx],
            invariant_audit: true,
            faults,
            max_time: 300_000,
            ..Default::default()
        };
        check_pair(&sys, &base, &format!(
            "wl {wl_seed} faults {fault_seed} site {crash_site} crash@{crash_at}+{down_for} ttl {lease_ttl} loss {loss_pm} under {:?}",
            SCHEMES[scheme_idx]
        ))?;
    }
}

/// A revocation storm: five staggered transactions take turns on one
/// entity. Each finishes before its successor arrives, so every commit
/// leaves a delegated *residue* entry the successor's request must
/// demand back — revoke, drain, re-delegate, five times down the chain,
/// on the detection and the prevention arms alike.
#[test]
fn revocation_storm_drains_the_chain_to_completion() {
    let db = Database::from_spec(&[("x", 0)]);
    let txns: Vec<_> = (0..5)
        .map(|i| {
            let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
            b.script("Lx x Ux").unwrap();
            b.build().unwrap()
        })
        .collect();
    let sys = TxnSystem::new(db, txns);
    let arrivals = vec![0, 40, 80, 120, 160];
    for resolution in SCHEMES {
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            delegation: Delegation::On,
            resolution,
            invariant_audit: true,
            ..Default::default()
        };
        let r = run_with_arrivals(&sys, &cfg, &arrivals).expect("valid config");
        assert_eq!(r.outcome, RunOutcome::Completed, "{resolution:?}");
        assert_eq!(r.metrics.committed, 5, "{resolution:?}");
        assert!(
            r.metrics.revocations >= 3,
            "{resolution:?}: the chain must actually revoke, got {}",
            r.metrics.revocations
        );
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable, "{resolution:?}");
    }
}
