//! Fixed-seed pins for probe detection-latency attribution.
//!
//! A Chandy–Misra–Haas probe can be launched by an *early* wait-edge and
//! then close a cycle whose final edge forms while the probe is still in
//! flight. `Metrics::detection_latency_ticks` must attribute the cycle to
//! that last-formed edge's appearance tick — a cycle cannot predate its
//! final edge — not to the probe's own (earlier) launch tick, which
//! overcounted by exactly the head start the probe had.
//!
//! The scenario pins the race deterministically: a two-site, two-phase
//! cross cycle where T2 arrives `d` ticks after T1, with `d` smaller than
//! the fixed message latency. T1 blocks first and its probe departs; T2's
//! blocking edge (the cycle's final edge) appears `d` ticks later, while
//! that probe is still on the wire; the probe arrives, finds the cycle,
//! and closes it. Under the old accounting every `d` reported the same
//! latency (abort tick minus probe launch); under last-formed-edge
//! attribution the reported latency shrinks by exactly `d`.

use kplock::model::{Database, TxnBuilder, TxnSystem};
use kplock::sim::{run_with_arrivals, DeadlockDetection, LatencyModel, SimConfig};

/// Two-phase transactions locking x (site 0) and y (site 1) in opposite
/// orders: a guaranteed cross-site cycle once both block.
fn cross_cycle() -> TxnSystem {
    let db = Database::from_spec(&[("x", 0), ("y", 1)]);
    let mut b1 = TxnBuilder::new(&db, "T1");
    b1.script("Lx x Ly y Uy Ux").unwrap();
    let t1 = b1.build().unwrap();
    let mut b2 = TxnBuilder::new(&db, "T2");
    b2.script("Ly y Lx x Ux Uy").unwrap();
    let t2 = b2.build().unwrap();
    TxnSystem::new(db, vec![t1, t2])
}

fn probe_cfg() -> SimConfig {
    SimConfig {
        latency: LatencyModel::Fixed(5),
        resolution: DeadlockDetection::Probe.into(),
        probe_audit: true,
        ..Default::default()
    }
}

#[test]
fn in_flight_close_is_charged_from_the_last_formed_edge() {
    // Timeline at latency 5, stagger d = 3: T1 blocks on y at tick 25 and
    // its probe departs for site 0; T2 blocks on x at tick 28 (the edge
    // that completes the cycle); the probe arrives at 30, closes, and the
    // abort order lands at 35. Detection latency is 35 − 28 = 7 ticks.
    // The pre-fix accounting said 35 − 25 = 10, charging the cycle for
    // three ticks during which it did not exist.
    let sys = cross_cycle();
    let r = run_with_arrivals(&sys, &probe_cfg(), &[0, 3]).unwrap();
    assert!(r.finished());
    assert_eq!(r.metrics.deadlocks_resolved, 1);
    assert_eq!(r.metrics.phantom_probe_aborts, 0);
    assert_eq!(
        r.metrics.detection_latency_ticks, 7,
        "cycle must be attributed to its last-formed edge (tick 28), \
         not the in-flight probe's launch (tick 25)"
    );
}

#[test]
fn latency_tracks_the_final_edge_across_staggers() {
    // Sweeping the stagger inside one network latency: the cycle's final
    // edge forms d ticks later each time, so the reported latency must
    // fall by exactly d. The old accounting was blind to d — the closing
    // probe always launched at the same tick — and reported a constant.
    let sys = cross_cycle();
    let latencies: Vec<u64> = (0u64..5)
        .map(|d| {
            let r = run_with_arrivals(&sys, &probe_cfg(), &[0, d]).unwrap();
            assert!(r.finished(), "stagger {d}");
            assert_eq!(r.metrics.deadlocks_resolved, 1, "stagger {d}");
            r.metrics.detection_latency_ticks
        })
        .collect();
    assert_eq!(
        latencies,
        vec![10, 9, 8, 7, 6],
        "latency must shrink tick-for-tick with the final edge's delay"
    );
}

#[test]
fn simultaneous_blocks_are_unchanged_by_the_attribution_fix() {
    // With no stagger both edges appear at the same tick, the maximum is
    // that tick, and the fix is a no-op: one network hop for the closing
    // probe plus one for the abort order, at latency 5 → 10 ticks.
    let sys = cross_cycle();
    let r = run_with_arrivals(&sys, &probe_cfg(), &[0, 0]).unwrap();
    assert_eq!(r.metrics.detection_latency_ticks, 10);
}
