//! Integration: exact schedule counting against the decision procedures,
//! and the concurrency-vs-safety trade-off it quantifies.

use kplock::core::policy::LockStrategy;
use kplock::core::{count_schedules, decide_two_site_system};
use kplock::workload::{random_pair, WorkloadParams};

#[test]
fn counting_safety_agrees_with_theorem2() {
    let mut compared = 0;
    for seed in 0..40 {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 4,
            ..Default::default()
        });
        let Some(counts) = count_schedules(&sys, 2_000_000) else {
            continue;
        };
        let verdict = decide_two_site_system(&sys).unwrap();
        assert_eq!(
            counts.is_safe(),
            verdict.is_safe(),
            "seed {seed}: counting vs Theorem 2"
        );
        compared += 1;
    }
    assert!(compared >= 30);
}

#[test]
fn sync_two_phase_never_wastes_schedules() {
    // For sync-2PL systems every legal schedule is serializable.
    for seed in 0..20 {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::TwoPhaseSync,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 4,
            ..Default::default()
        });
        if let Some(c) = count_schedules(&sys, 2_000_000) {
            assert_eq!(c.legal, c.serializable, "seed {seed}");
            assert!((c.serializable_fraction() - 1.0).abs() < 1e-12);
        }
    }
}

#[test]
fn synchronization_only_removes_schedules() {
    // Sync-2PL is loose 2PL plus barrier precedences on the same steps, so
    // its legal-schedule set is a subset: counting must reflect that.
    for seed in 0..15 {
        let count_for = |strategy: LockStrategy| {
            let sys = random_pair(&WorkloadParams {
                seed,
                strategy,
                sites: 2,
                entities_per_site: 2,
                steps_per_txn: 4,
                ..Default::default()
            });
            count_schedules(&sys, 4_000_000).map(|c| c.legal)
        };
        let (Some(loose), Some(sync)) = (
            count_for(LockStrategy::TwoPhaseLoose),
            count_for(LockStrategy::TwoPhaseSync),
        ) else {
            continue;
        };
        assert!(sync <= loose, "seed {seed}: sync {sync} > loose {loose}");
    }
}
