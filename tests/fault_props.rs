//! The fault-injection safety harness: under *any* seeded plan of message
//! loss, duplication and reordering — and scheduled site crashes — the
//! engine's safety invariants must hold for every resolution scheme.
//!
//! Three nets catch a violation:
//!
//! * [`SimConfig::invariant_audit`] asserts the touched lock table's
//!   structural invariants after every site event — no S+X co-hold, no
//!   double-granted X, upgraders hold, nobody both holds and waits — so a
//!   duplicated grant or a bad recovery rebuild panics at the exact tick
//!   it becomes observable;
//! * the engine's abort path asserts no *committed* transaction is ever
//!   aborted — a wound, probe order, rejection or lease expiry arriving
//!   late must be dropped by the epoch/commit validation, never re-run a
//!   finished transaction (observably: `committed <= sys.len()`);
//! * completed runs must audit legal and conflict-serializable: whatever
//!   the network mangled, the committed history is still a 2PL history.
//!
//! Liveness is asserted only where the scheme guarantees it (a faulty run
//! may honestly time out); what may never happen is a *stall* under
//! retransmission, or a safety violation anywhere.

use kplock::core::policy::LockStrategy;
use kplock::sim::{
    run, DeadlockDetection, DeadlockResolution, FaultPlan, PreventionScheme, RunOutcome, SimConfig,
    SiteCrash,
};
use kplock::workload::{random_system, WorkloadParams};
use proptest::prelude::*;

/// All six resolution arms: every detector and every preventer.
const SCHEMES: [DeadlockResolution; 6] = [
    DeadlockResolution::Detect(DeadlockDetection::Periodic),
    DeadlockResolution::Detect(DeadlockDetection::OnBlock),
    DeadlockResolution::Detect(DeadlockDetection::Probe),
    DeadlockResolution::Prevent(PreventionScheme::WoundWait),
    DeadlockResolution::Prevent(PreventionScheme::WaitDie),
    DeadlockResolution::Prevent(PreventionScheme::NoWait),
];

fn system(seed: u64, sites: usize, txns: usize, read_percent: u32) -> kplock::model::TxnSystem {
    random_system(&WorkloadParams {
        seed,
        sites,
        entities_per_site: 2,
        transactions: txns,
        steps_per_txn: 5,
        read_percent,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

fn check_run(
    sys: &kplock::model::TxnSystem,
    cfg: &SimConfig,
    tag: &str,
) -> Result<(), TestCaseError> {
    // `run` panics on any invariant violation (the audit is on) or on an
    // abort of a committed transaction — both are the harness firing.
    let r = run(sys, cfg).expect("valid config");
    prop_assert!(
        r.metrics.committed <= sys.len(),
        "{tag}: a transaction committed twice"
    );
    if cfg.faults.retransmit_after > 0 {
        prop_assert_ne!(
            r.outcome,
            RunOutcome::Stalled,
            "{}: stalled with retransmission on — a lost message was never retried",
            tag
        );
    }
    if r.outcome == RunOutcome::Completed {
        prop_assert_eq!(r.metrics.committed, sys.len(), "{}", tag);
        r.audit
            .legal
            .as_ref()
            .unwrap_or_else(|e| panic!("{tag}: illegal committed history: {e}"));
        prop_assert!(
            r.audit.serializable,
            "{}: sync-2PL commits must stay serializable under faults",
            tag
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 seeded loss/dup/reorder plans (rates up to 0.3), each run
    /// under all six resolution schemes on a shared/exclusive sync-2PL
    /// workload. Safety must hold everywhere.
    #[test]
    fn channel_faults_never_break_safety(
        wl_seed in 0u64..500,
        fault_seed in 0u64..1000,
        sim_seed in 0u64..100,
        loss_pm in 0u32..=300,
        dup_pm in 0u32..=300,
        reorder_pm in 0u32..=300,
        sites in 2usize..4,
        txns in 2usize..5,
        read_percent in 0u32..=50,
    ) {
        let sys = system(wl_seed, sites, txns, read_percent);
        let faults = FaultPlan {
            seed: fault_seed,
            loss: f64::from(loss_pm) / 1000.0,
            duplication: f64::from(dup_pm) / 1000.0,
            reorder: f64::from(reorder_pm) / 1000.0,
            reorder_window: 8,
            retransmit_after: 80,
            ..FaultPlan::none()
        };
        for resolution in SCHEMES {
            let cfg = SimConfig {
                seed: sim_seed,
                latency: kplock::sim::LatencyModel::Fixed(4),
                resolution,
                invariant_audit: true,
                faults: faults.clone(),
                max_time: 300_000,
                ..Default::default()
            };
            check_run(&sys, &cfg, &format!(
                "wl {wl_seed} faults {fault_seed} loss {loss_pm} dup {dup_pm} reorder {reorder_pm} under {resolution:?}"
            ))?;
        }
    }

    /// Crashes on top of lossy channels: a random outage (sometimes
    /// outliving the lease ttl, so holders expire and abort) plus
    /// moderate loss/dup, across all six schemes.
    #[test]
    fn crashes_with_lease_expiry_never_break_safety(
        wl_seed in 0u64..300,
        fault_seed in 0u64..1000,
        crash_site in 0usize..2,
        crash_at in 10u64..200,
        down_for in 1u64..400,
        lease_ttl in 0u64..250,
        loss_pm in 0u32..=200,
        scheme_idx in 0usize..6,
    ) {
        let sys = system(wl_seed, 2, 3, 30);
        let faults = FaultPlan {
            seed: fault_seed,
            loss: f64::from(loss_pm) / 1000.0,
            duplication: 0.1,
            reorder: 0.1,
            reorder_window: 8,
            retransmit_after: 80,
            lease_ttl,
            crashes: vec![SiteCrash { site: crash_site, at: crash_at, down_for }],
        };
        let cfg = SimConfig {
            latency: kplock::sim::LatencyModel::Fixed(4),
            resolution: SCHEMES[scheme_idx],
            invariant_audit: true,
            faults,
            max_time: 300_000,
            ..Default::default()
        };
        check_run(&sys, &cfg, &format!(
            "wl {wl_seed} faults {fault_seed} crash@{crash_at}+{down_for} ttl {lease_ttl} under {:?}",
            SCHEMES[scheme_idx]
        ))?;
    }
}
