//! Deep cross-validation of the paper's figure instances: every claim the
//! paper makes about each figure, checked by at least two independent
//! mechanisms.

use kplock::core::closure::{close_wrt_dominator, ClosureError};
use kplock::core::{
    count_schedules, decide_by_extensions, decide_exhaustive, decide_two_site_system,
    ConflictDigraph, OracleOptions, OracleOutcome,
};
use kplock::graph::enumerate_dominators;
use kplock::model::{EntityId, TxnId};
use kplock::sat::all_models;
use kplock::workload::{fig1, fig3, fig5, fig8_formula, fig8_reduction, figure_corpus};

#[test]
fn fig1_three_ways() {
    let sys = fig1();
    // 1. Theorem 2.
    let v = decide_two_site_system(&sys).unwrap();
    assert!(v.is_unsafe());
    // 2. State-space oracle.
    let o = decide_exhaustive(&sys, &OracleOptions::default());
    assert!(matches!(o.outcome, OracleOutcome::Unsafe(_)));
    // 3. Lemma-1 extension oracle.
    let e = decide_by_extensions(&sys, TxnId(0), TxnId(1), 2_000_000).unwrap();
    assert!(e.is_unsafe());
    e.certificate().unwrap().verify(&sys).unwrap();
}

#[test]
fn fig3_counting_confirms_unsafety() {
    let sys = fig3();
    let c = count_schedules(&sys, 5_000_000).expect("small system");
    assert!(c.legal > 0);
    assert!(
        c.serializable < c.legal,
        "unsafe: some legal schedule is non-serializable ({c:?})"
    );
}

#[test]
fn fig5_closure_contradiction_is_the_paper_argument() {
    // The paper: closure w.r.t. the only dominator {x1, x2} forces Ux1 to
    // both precede and follow Ux2 — i.e. a cycle or a broken dominator.
    let sys = fig5();
    let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
    let (doms, exhaustive) = enumerate_dominators(&d.graph, 100);
    assert!(exhaustive);
    assert_eq!(doms.len(), 1);
    let dom: Vec<EntityId> = doms[0].iter().map(|i| d.entities[i]).collect();
    let err = close_wrt_dominator(&sys, TxnId(0), TxnId(1), &dom).unwrap_err();
    assert!(
        matches!(
            err,
            ClosureError::CycleCreated { .. } | ClosureError::DominatorBroken
        ),
        "{err:?}"
    );
    // And exhaustive counting shows full safety.
    let c = count_schedules(&sys, 10_000_000).expect("fits");
    assert_eq!(c.legal, c.serializable, "Fig. 5 is safe");
}

#[test]
fn fig8_models_inject_into_desirable_dominators() {
    let f = fig8_formula();
    let (models, exhaustive) = all_models(&f, 100);
    assert!(exhaustive);
    assert!(!models.is_empty());
    let r = fig8_reduction();
    for m in &models {
        let dom = r.dominator_for_assignment(m);
        assert!(r.is_desirable(&dom), "model {m:?} must map to desirable");
    }
    // Full assignments are a subset of the desirable dominators (partial
    // assignments also count as desirable when they cover every clause).
    let d = r.d_graph();
    let (doms, _) = enumerate_dominators(&d.graph, 10_000);
    let desirable = doms
        .iter()
        .filter(|bits| {
            let dom: Vec<EntityId> = bits.iter().map(|i| d.entities[i]).collect();
            r.is_desirable(&dom)
        })
        .count();
    assert!(desirable >= models.len());
}

#[test]
fn corpus_expectations_via_counting() {
    for named in figure_corpus() {
        let Some(expected_safe) = named.expected_safe else {
            continue;
        };
        if let Some(c) = count_schedules(&named.sys, 5_000_000) {
            assert_eq!(c.is_safe(), expected_safe, "{}", named.name);
        }
    }
}
