//! End-to-end hierarchical locking: the multi-granularity workloads of
//! `kplock_workload::hierarchy` run through the real simulator, flat and
//! hierarchical arms side by side on identical logical accesses.
//!
//! Pins the headline claim of the granularity refactor: a scan-heavy
//! workload over 10⁵ records needs **at least 5× fewer lock requests**
//! under hierarchical locking (one escalated file lock instead of one
//! lock per record), while committing the same transactions and passing
//! the full-matrix invariant audit.

use kplock::model::hierarchy::Granularity;
use kplock::sim::{run_with_arrivals, SimConfig};
use kplock::workload::{hierarchy_sweep, hierarchy_system, AccessProfile, HierarchyParams};

const ARMS: [Granularity; 3] = [
    Granularity::Flat,
    Granularity::Hierarchical {
        escalation_threshold: 16,
    },
    Granularity::Hierarchical {
        escalation_threshold: 2,
    },
];

/// Every profile × every granularity arm commits everything, audits
/// clean (full-matrix co-holder exclusion armed) and serializes.
#[test]
fn all_arms_commit_and_audit_clean() {
    for profile in [
        AccessProfile::ReadMostly,
        AccessProfile::WriteHot,
        AccessProfile::Scan,
    ] {
        let p = HierarchyParams {
            profile,
            files: 6,
            records_per_file: 32,
            sites: 3,
            transactions: 12,
            zipf_theta: 0.7,
            arrival_gap: 25,
            seed: 5,
        };
        for sc in hierarchy_sweep(&p, &ARMS) {
            let cfg = SimConfig {
                seed: 11,
                invariant_audit: true,
                ..Default::default()
            };
            let r = run_with_arrivals(&sc.system, &cfg, &sc.arrivals).unwrap();
            assert!(r.finished(), "{profile:?}/{}: did not finish", sc.name);
            assert_eq!(
                r.metrics.committed as usize, 12,
                "{profile:?}/{}: lost transactions",
                sc.name
            );
            r.audit
                .legal
                .as_ref()
                .unwrap_or_else(|e| panic!("{profile:?}/{}: illegal schedule: {e}", sc.name));
            assert!(r.audit.serializable, "{profile:?}/{}", sc.name);
        }
    }
}

/// The acceptance gate: scans over a 10⁵-record catalog take ≥5× fewer
/// lock requests hierarchically, with the invariant audit on for both
/// arms, identical commit counts, and no deadlocks in either arm.
#[test]
fn scan_at_1e5_records_needs_5x_fewer_lock_requests() {
    let p = HierarchyParams {
        profile: AccessProfile::Scan,
        files: 100,
        records_per_file: 1000, // 100_000 records
        sites: 4,
        transactions: 10,
        zipf_theta: 0.6,
        arrival_gap: 50,
        seed: 3,
    };
    let run_arm = |g| {
        let sc = hierarchy_system(&p, g);
        let cfg = SimConfig {
            seed: 17,
            invariant_audit: true,
            ..Default::default()
        };
        let r = run_with_arrivals(&sc.system, &cfg, &sc.arrivals).unwrap();
        assert!(r.finished(), "{}: did not finish", sc.name);
        r.audit
            .legal
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: illegal schedule: {e}", sc.name));
        assert_eq!(r.metrics.committed, 10, "{}", sc.name);
        assert_eq!(r.metrics.deadlocks_resolved, 0, "{}", sc.name);
        r.metrics
    };
    let flat = run_arm(Granularity::Flat);
    let hier = run_arm(Granularity::Hierarchical {
        escalation_threshold: 16,
    });
    // Flat: ~1000 lock requests per scan. Hierarchical: one SIX file
    // lock plus X locks on the couple of written records.
    assert!(
        flat.lock_requests >= 5 * hier.lock_requests,
        "expected ≥5× fewer lock requests hierarchically: flat {}, hier {}",
        flat.lock_requests,
        hier.lock_requests
    );
    // Fewer lock requests also means fewer messages on the wire.
    assert!(
        flat.messages > hier.messages,
        "expected less message traffic hierarchically: flat {}, hier {}",
        flat.messages,
        hier.messages
    );
}

/// Intention modes let point writers under a file coexist with a point
/// reader holding `IS` — hierarchical point traffic must not serialize
/// behind file locks.
#[test]
fn point_traffic_stays_concurrent_under_intention_locks() {
    let p = HierarchyParams {
        profile: AccessProfile::ReadMostly,
        files: 2,
        records_per_file: 64,
        sites: 1,
        transactions: 16,
        zipf_theta: 0.0, // uniform across the two files
        arrival_gap: 0,  // all at tick 0: maximum overlap pressure
        seed: 9,
    };
    let sc = hierarchy_system(
        &p,
        Granularity::Hierarchical {
            escalation_threshold: 16,
        },
    );
    let cfg = SimConfig {
        seed: 4,
        invariant_audit: true,
        ..Default::default()
    };
    let r = run_with_arrivals(&sc.system, &cfg, &sc.arrivals).unwrap();
    assert!(r.finished());
    assert_eq!(r.metrics.committed, 16);
    r.audit.legal.as_ref().unwrap();
    assert!(r.audit.serializable);
}

/// Open-loop arrivals actually shape the run: the same system released
/// at tick 0 versus staggered arrivals produces different makespans, and
/// staggered arrivals never finish before the last arrival tick.
#[test]
fn open_loop_arrivals_shape_the_run() {
    let p = HierarchyParams {
        profile: AccessProfile::WriteHot,
        files: 4,
        records_per_file: 16,
        sites: 2,
        transactions: 8,
        arrival_gap: 200,
        seed: 21,
        ..Default::default()
    };
    let sc = hierarchy_system(&p, Granularity::Flat);
    let cfg = SimConfig {
        seed: 2,
        ..Default::default()
    };
    let staggered = run_with_arrivals(&sc.system, &cfg, &sc.arrivals).unwrap();
    let batch = run_with_arrivals(&sc.system, &cfg, &vec![0; sc.arrivals.len()]).unwrap();
    assert!(staggered.finished() && batch.finished());
    let last = *sc.arrivals.last().unwrap();
    assert!(last > 0, "gap 200 must stagger arrivals");
    assert!(
        staggered.metrics.makespan >= last,
        "makespan {} ended before the last arrival {last}",
        staggered.metrics.makespan
    );
    assert!(
        staggered.metrics.makespan > batch.metrics.makespan,
        "staggering must stretch the run: {} vs {}",
        staggered.metrics.makespan,
        batch.metrics.makespan
    );
}
