//! The triad property: three independent deciders must agree on every
//! random small system.
//!
//! * `decide_exhaustive` — the oracle, brute-force interleaving search;
//! * `check_safety` / `check_deadlock` — the Theorem-3-converse SAT
//!   encoding decided by our DPLL;
//! * `AvoidPlan::synthesize` — the greedy polynomial certificate, whose
//!   fully-certified verdict is a *sufficient* condition the other two
//!   must never contradict.
//!
//! On top of verdict agreement, every `Unsafe` answer must carry a
//! witness that replays through the per-site lock tables to a legal,
//! non-serializable history, and every deadlock answer a prefix that
//! replays to a waits-for cycle — the SAT checker never gets to be
//! "right" by accident.

use kplock::core::policy::LockStrategy;
use kplock::core::{
    check_deadlock, check_safety, decide_exhaustive, synthesize_optimal, OracleOptions,
    OracleOutcome, SatSafety,
};
use kplock::sim::{replay_deadlock, replay_violation, AvoidPlan};
use kplock::workload::{random_system, WorkloadParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Oracle, SAT checker, and greedy plan agree on random systems; SAT
    /// witnesses replay to real violations/stalls. Sizes stay modest not
    /// for the solver's sake (clause learning handles far bigger) but for
    /// the oracle's: it explores interleavings outright, and the triad
    /// only bites where the oracle actually finishes.
    #[test]
    fn oracle_sat_and_greedy_agree(
        seed in 0u64..10_000,
        sites in 1usize..4,
        txns in 2usize..5,
        steps_per_txn in 4usize..7,
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            LockStrategy::Minimal,
            LockStrategy::TwoPhaseLoose,
            LockStrategy::TwoPhaseSync,
        ][strategy_idx];
        let sys = random_system(&WorkloadParams {
            seed,
            sites,
            entities_per_site: 2,
            transactions: txns,
            steps_per_txn,
            cross_edge_percent: 20,
            read_percent: 0, // exclusive-only: the checker's domain
            strategy,
            ..Default::default()
        });

        let safety = check_safety(&sys)
            .expect("exclusive-only generated systems must encode");
        let deadlock = check_deadlock(&sys)
            .expect("exclusive-only generated systems must encode");

        // Every verdict ships replayable evidence.
        if let SatSafety::Unsafe(witness) = &safety.verdict {
            let audit = replay_violation(&sys, witness)
                .unwrap_or_else(|e| panic!("seed {seed}: witness must replay: {e}"));
            prop_assert!(audit.legal.is_ok());
            prop_assert!(!audit.serializable);
        }
        if let Some(prefix) = &deadlock.deadlock {
            let evidence = replay_deadlock(&sys, prefix)
                .unwrap_or_else(|e| panic!("seed {seed}: prefix must replay: {e}"));
            prop_assert!(evidence.cycle.len() >= 2);
        }

        // Oracle cross-examination (it fully explores these sizes).
        let report = decide_exhaustive(&sys, &OracleOptions::default());
        match report.outcome {
            OracleOutcome::Safe => {
                prop_assert!(
                    safety.verdict.is_safe(),
                    "seed {}: oracle safe, SAT unsafe", seed
                );
                // A completed Safe exploration also decides deadlock
                // reachability exactly.
                prop_assert_eq!(
                    deadlock.deadlock.is_some(),
                    report.deadlock_reachable,
                    "seed {}: deadlock verdicts disagree", seed
                );
            }
            OracleOutcome::Unsafe(_) => {
                prop_assert!(
                    !safety.verdict.is_safe(),
                    "seed {}: oracle unsafe, SAT safe", seed
                );
            }
            OracleOutcome::Aborted => {}
        }

        // Greedy is a sufficient condition: a fully-certified plan means
        // no reachable deadlock and (under sync-2PL) safety; the exact
        // deciders must not contradict it.
        let greedy = AvoidPlan::synthesize(&sys);
        prop_assert!(greedy.verify(&sys).is_ok());
        if greedy.fully_certified() {
            prop_assert!(
                deadlock.deadlock.is_none(),
                "seed {}: certified set reached a deadlock", seed
            );
        }

        // And the iterated-SAT optimum dominates greedy, verifiably.
        let opt = synthesize_optimal(&sys);
        prop_assert!(opt.optimal_count >= opt.greedy_count);
        prop_assert_eq!(opt.greedy_count, greedy.certified_count());
        prop_assert!(opt.plan.verify(&sys).is_ok());
    }
}
