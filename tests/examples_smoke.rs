//! Smoke tests covering the core path of each of the eight `examples/`
//! mains, so the examples cannot silently rot. Each test exercises the same
//! API sequence as its example (with trimmed iteration counts) and asserts
//! the example's own invariants; CI additionally executes the example
//! binaries.

use kplock::core::closure::try_unsafety_via_dominator;
use kplock::core::policy::{insert_locks, LockStrategy};
use kplock::core::{analyze_pair, count_schedules, SafetyVerdict};
use kplock::geometry::{find_separation, render, PlanePicture};
use kplock::graph::enumerate_dominators;
use kplock::model::{Database, EntityId, TxnBuilder, TxnId, TxnSystem};
use kplock::sat::SatResult;
use kplock::sim::{
    run, run_threaded, LatencyModel, SimConfig, TableSpec, ThreadedConfig, VictimPolicy,
};
use kplock::workload::{
    fig1, fig2, fig3, fig5, fig8_formula, fig8_reduction, random_pair, random_system,
    WorkloadParams,
};

/// Core path of `examples/quickstart.rs`: build a distributed pair with the
/// script DSL, decide safety, verify the Theorem-2 certificate.
#[test]
fn quickstart_core_path() {
    let db = Database::from_spec(&[("x", 0), ("y", 0), ("w", 1), ("z", 1)]);

    let mut b = TxnBuilder::new(&db, "T1");
    b.script("Lx x Ux Ly y Uy").unwrap();
    b.script("Lw w Uw").unwrap();
    let t1 = b.build().unwrap();

    let mut b = TxnBuilder::new(&db, "T2");
    b.script("Ly y Uy Lx x Ux").unwrap();
    b.script("Lw w Uw").unwrap();
    let t2 = b.build().unwrap();

    let sys = TxnSystem::new(db, vec![t1, t2]);
    let analysis = analyze_pair(&sys);
    assert!(!analysis.strongly_connected);
    let SafetyVerdict::Unsafe(cert) = &analysis.verdict else {
        panic!("quickstart pair must be unsafe, got {:?}", analysis.verdict);
    };
    assert!(!cert.dominator.is_empty());
    cert.verify(&sys).expect("certificate verifies");
}

/// Core path of `examples/bank_transfer.rs`: the cross-branch transfer pair
/// is unsafe under minimal and loose-2PL locking, safe under synchronized
/// 2PL; the simulator agrees dynamically.
#[test]
fn bank_transfer_core_path() {
    let build = |strategy: LockStrategy| {
        let db = Database::from_spec(&[("alice", 0), ("bob", 0), ("carol", 1), ("dave", 1)]);
        let mut b = TxnBuilder::new(&db, "transfer-1");
        let d1 = b.update("alice").unwrap();
        let c1 = b.update("carol").unwrap();
        b.edge(d1, c1);
        let d2 = b.update("bob").unwrap();
        let c2 = b.update("dave").unwrap();
        b.edge(d2, c2);
        let t1 = b.build().unwrap();
        let mut b = TxnBuilder::new(&db, "transfer-2");
        let d1 = b.update("carol").unwrap();
        let c1 = b.update("alice").unwrap();
        b.edge(d1, c1);
        let d2 = b.update("dave").unwrap();
        let c2 = b.update("bob").unwrap();
        b.edge(d2, c2);
        let t2 = b.build().unwrap();
        let locked = vec![
            insert_locks(&db, &t1, strategy).unwrap(),
            insert_locks(&db, &t2, strategy).unwrap(),
        ];
        TxnSystem::new(db, locked)
    };

    for (strategy, expect_safe) in [
        (LockStrategy::Minimal, false),
        (LockStrategy::TwoPhaseLoose, false),
        (LockStrategy::TwoPhaseSync, true),
    ] {
        let sys = build(strategy);
        let analysis = analyze_pair(&sys);
        assert_eq!(
            matches!(analysis.verdict, SafetyVerdict::Safe(_)),
            expect_safe,
            "{strategy:?}"
        );
        let mut anomalies = 0;
        for seed in 0..20 {
            let r = run(
                &sys,
                &SimConfig {
                    seed,
                    latency: LatencyModel::Uniform(1, 40),
                    ..Default::default()
                },
            )
            .expect("valid config");
            assert!(r.finished());
            r.audit.legal.as_ref().expect("history must be legal");
            if !r.audit.serializable {
                anomalies += 1;
            }
        }
        if expect_safe {
            assert_eq!(anomalies, 0, "{strategy:?}: safe system showed anomaly");
        }
    }
}

/// Core path of `examples/lock_manager_sim.rs`: seeded simulator sweeps
/// (explicit resolution/faults builders, outcome asserted on the enum), a
/// threaded run, and the faulty-network section with crash recovery.
#[test]
fn lock_manager_sim_core_path() {
    use kplock::sim::{DeadlockResolution, FaultPlan, RunOutcome, SiteCrash};
    let sys = random_system(&WorkloadParams {
        sites: 3,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        cross_edge_percent: 30,
        read_percent: 0,
        hot_site_percent: 0,
        zipf_theta: 0.0,
        strategy: LockStrategy::TwoPhaseSync,
        seed: 42,
    });
    let mut commits = 0;
    for seed in 0..10 {
        let r = run(
            &sys,
            &SimConfig {
                seed,
                latency: LatencyModel::Uniform(1, 30),
                resolution: DeadlockResolution::default(),
                faults: FaultPlan::none(),
                victim_policy: VictimPolicy::Youngest,
                ..Default::default()
            },
        )
        .expect("valid config");
        assert_eq!(r.outcome, RunOutcome::Completed, "run must finish");
        r.audit.legal.as_ref().expect("history must be legal");
        assert!(r.audit.serializable, "2PL-sync histories are serializable");
        commits += r.metrics.committed;
    }
    assert_eq!(commits, 40, "4 transactions x 10 runs all commit");

    // The faulty-network section: lossy channels plus a crash whose
    // outage outlives the lease ttl, exactly as the example runs it.
    let mut faults = FaultPlan::lossy(7, 0.15, 0.10, 0.10);
    faults.lease_ttl = 150;
    faults.crashes = vec![SiteCrash {
        site: 0,
        at: 100,
        down_for: 200,
    }];
    let r = run(
        &sys,
        &SimConfig {
            latency: LatencyModel::Uniform(1, 30),
            invariant_audit: true,
            faults,
            max_time: 1_000_000,
            ..Default::default()
        },
    )
    .expect("valid config");
    assert_ne!(
        r.outcome,
        RunOutcome::Stalled,
        "retransmission keeps it live"
    );
    r.audit.legal.as_ref().expect("history must be legal");
    assert_eq!(r.metrics.recoveries, 1, "the outage ends inside the run");
    if r.outcome == RunOutcome::Completed {
        assert!(r.audit.serializable);
    }

    // The real-thread runner is timeout-based and can legitimately exhaust
    // its attempt budget on an oversubscribed machine; retry before calling
    // that a failure. Legality/serializability must hold on every run.
    let mut finished = false;
    for _ in 0..3 {
        let threaded = run_threaded(&sys, &ThreadedConfig::default()).expect("valid config");
        threaded.audit.legal.as_ref().expect("legal history");
        assert!(threaded.audit.serializable);
        if threaded.finished {
            finished = true;
            break;
        }
    }
    assert!(finished, "threaded runner never finished in 3 attempts");
}

/// Core path of `examples/policy_comparison.rs`: synchronized 2PL is always
/// safe and never admits more schedules than minimal locking.
#[test]
fn policy_comparison_core_path() {
    let mut minimal_legal: u128 = 0;
    let mut sync_legal: u128 = 0;
    for seed in 0..6 {
        let params = |strategy| WorkloadParams {
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 4,
            strategy,
            seed,
            ..Default::default()
        };
        let minimal = random_pair(&params(LockStrategy::Minimal));
        let sync = random_pair(&params(LockStrategy::TwoPhaseSync));
        assert!(
            matches!(analyze_pair(&sync).verdict, SafetyVerdict::Safe(_)),
            "2PL-sync must be safe (Theorem 1)"
        );
        minimal_legal += count_schedules(&minimal, 5_000_000).expect("small").legal;
        let counts = count_schedules(&sync, 5_000_000).expect("small");
        assert_eq!(
            counts.legal, counts.serializable,
            "safe => all serializable"
        );
        sync_legal += counts.legal;
    }
    assert!(
        sync_legal <= minimal_legal,
        "stricter locking cannot add schedules"
    );
}

/// Core path of `examples/sat_reduction.rs`: the Fig. 8 reduction's
/// dominator table matches the formula's satisfying assignments.
#[test]
fn sat_reduction_core_path() {
    let f = fig8_formula();
    let r = fig8_reduction();
    assert!(r.verify_intended());

    let d = r.d_graph();
    let (doms, exhaustive) = enumerate_dominators(&d.graph, 10_000);
    assert!(exhaustive);
    let mut certificates = 0;
    for dom_bits in &doms {
        let dom: Vec<EntityId> = dom_bits.iter().map(|i| d.entities[i]).collect();
        let desirable = r.is_desirable(&dom);
        let cert = try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom);
        assert_eq!(desirable, cert.is_some(), "Theorem 3 soundness");
        if cert.is_some() {
            certificates += 1;
        }
    }
    match kplock::sat::solve(&f) {
        SatResult::Sat(_) => assert!(certificates > 0),
        SatResult::Unsat => assert_eq!(certificates, 0),
    }
}

/// Core path of `examples/paper_figures.rs`: figure instances decide the
/// way the paper says, and the Fig. 2 plane renders with a separation.
#[test]
fn paper_figures_core_path() {
    let f1 = fig1();
    assert!(matches!(
        analyze_pair(&f1).verdict,
        SafetyVerdict::Unsafe(_)
    ));

    let sys = fig2();
    let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
    let w = find_separation(&plane).expect("Fig. 2 is unsafe");
    let picture = render(&sys, &plane, Some(&w.path));
    assert!(!picture.is_empty());

    assert!(matches!(
        analyze_pair(&fig3()).verdict,
        SafetyVerdict::Unsafe(_)
    ));
    let f5 = fig5();
    let a5 = analyze_pair(&f5);
    assert!(
        !a5.strongly_connected,
        "Fig. 5: D is not strongly connected"
    );
    assert!(
        matches!(a5.verdict, SafetyVerdict::Safe(_)),
        "Fig. 5: yet the system is safe"
    );
}

/// Core path of `examples/exact_check.rs`: the SAT checker's unsafety
/// witness replays to a non-serializable history, its deadlock prefix
/// replays to a waits-for cycle, and `synthesize_optimal` beats greedy
/// on the opposed family.
#[test]
fn exact_check_core_path() {
    use kplock::core::{check_deadlock, check_safety, synthesize_optimal, SatSafety};
    use kplock::sim::{replay_deadlock, replay_violation};
    use kplock::workload::opposed_mix;

    let db = Database::from_spec(&[("x", 0), ("y", 1)]);
    let txns = (0..2)
        .map(|i| {
            let mut b = TxnBuilder::new(&db, format!("E{i}"));
            b.script("Lx x Ux Ly y Uy").unwrap();
            b.build().unwrap()
        })
        .collect();
    let sys = TxnSystem::new(db, txns);
    let report = check_safety(&sys).expect("encodes");
    let SatSafety::Unsafe(witness) = &report.verdict else {
        panic!("early unlock must be unsafe");
    };
    let audit = replay_violation(&sys, witness).expect("witness replays");
    assert!(audit.legal.is_ok() && !audit.serializable);

    let sys = opposed_mix(2, 2);
    assert!(check_safety(&sys).expect("encodes").verdict.is_safe());
    let dl = check_deadlock(&sys).expect("encodes");
    let prefix = dl.deadlock.as_ref().expect("deadlock reachable");
    let evidence = replay_deadlock(&sys, prefix).expect("prefix replays");
    assert!(evidence.cycle.len() >= 2);

    let opt = synthesize_optimal(&sys);
    assert!(opt.optimal_count > opt.greedy_count);
    opt.plan.verify(&sys).expect("optimal plan verifies");
}

/// Core path of `examples/table_bench.rs`: a neutral queue table is a
/// drop-in for FIFO in the simulator, and every table spec finishes a
/// serializable run on the threaded runner.
#[test]
fn table_bench_core_path() {
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });

    let report_for = |table: TableSpec| {
        let cfg = SimConfig {
            seed: 7,
            latency: LatencyModel::Uniform(1, 20),
            table,
            ..Default::default()
        };
        run(&sys, &cfg).expect("valid config")
    };
    let fifo = report_for(TableSpec::Fifo);
    let queue = report_for(TableSpec::queue());
    assert_eq!(
        fifo.metrics, queue.metrics,
        "a neutral queue table must be indistinguishable from FIFO"
    );
    assert_eq!(fifo.committed_epoch, queue.committed_epoch);

    for spec in [
        TableSpec::Fifo,
        TableSpec::queue(),
        TableSpec::Queue {
            bias: kplock::dlm::Bias::ReaderBatch,
            cohorts: 0,
        },
        TableSpec::Queue {
            bias: kplock::dlm::Bias::WriterPreference,
            cohorts: 2,
        },
    ] {
        let cfg = ThreadedConfig {
            shards: 4,
            table: spec,
            ..Default::default()
        };
        // Like the lock_manager_sim smoke above: a timeout-based runner can
        // exhaust its budget on an oversubscribed box, so retry; the audit
        // must hold on every run.
        let mut finished = false;
        for _ in 0..3 {
            let r = run_threaded(&sys, &cfg).expect("valid config");
            r.audit.legal.as_ref().expect("legal history");
            assert!(r.audit.serializable);
            if r.finished {
                finished = true;
                break;
            }
        }
        assert!(finished, "{spec:?} never finished in 3 attempts");
    }
}
