//! Second property suite: closure invariants (Lemmas 2–3), simulator
//! invariants, and schedule algebra.

use kplock::core::closure::close_wrt_dominator;
use kplock::core::policy::LockStrategy;
use kplock::core::ConflictDigraph;
use kplock::graph::find_dominator;
use kplock::model::{is_serializable, projection_respects_site_orders, EntityId, Schedule, TxnId};
use kplock::sim::{run, LatencyModel, SimConfig};
use kplock::workload::{random_pair, random_system, WorkloadParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 3 (two sites): the closure never fails, and the chosen set
    /// remains a dominator of the strengthened system's D.
    #[test]
    fn lemma3_closure_succeeds_on_two_sites(seed in 0u64..500) {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 5,
            ..Default::default()
        });
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        let Some(dom_bits) = find_dominator(&d.graph) else {
            return Ok(()); // strongly connected: nothing to close
        };
        let dom: Vec<EntityId> = dom_bits.iter().map(|i| d.entities[i]).collect();
        let closure = close_wrt_dominator(&sys, TxnId(0), TxnId(1), &dom);
        prop_assert!(closure.is_ok(), "Lemma 3 violated: {:?}", closure.err());
        let closure = closure.unwrap();
        // X still dominates D(R1, R2).
        let d2 = ConflictDigraph::build(&closure.system, TxnId(0), TxnId(1));
        for (u, v) in d2.graph.edges() {
            let from_out = !dom.contains(&d2.entities[u]);
            let into_x = dom.contains(&d2.entities[v]);
            prop_assert!(!(from_out && into_x), "dominator broken after closure");
        }
        // The strengthened partial orders extend the originals.
        for t in [TxnId(0), TxnId(1)] {
            let orig = sys.txn(t);
            let strong = closure.system.txn(t);
            for a in orig.step_ids() {
                for b in orig.step_ids() {
                    if orig.precedes(a, b) {
                        prop_assert!(strong.precedes(a, b), "closure lost a precedence");
                    }
                }
            }
        }
    }

    /// Serial schedules of any system are legal and serializable, in every
    /// transaction order.
    #[test]
    fn serial_schedules_always_serializable(seed in 0u64..500, flip in any::<bool>()) {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 4,
            ..Default::default()
        });
        let order = if flip {
            vec![TxnId(1), TxnId(0)]
        } else {
            vec![TxnId(0), TxnId(1)]
        };
        let s = Schedule::serial(&sys, &order);
        prop_assert!(s.validate_complete(&sys).is_ok());
        prop_assert!(is_serializable(&sys, &s));
    }

    /// Simulator invariants on arbitrary workloads: committed histories are
    /// legal and project correctly onto every site.
    #[test]
    fn simulator_histories_are_legal_and_projectable(
        seed in 0u64..200,
        sim_seed in 0u64..50,
    ) {
        let sys = random_system(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 2,
            entities_per_site: 2,
            transactions: 3,
            steps_per_txn: 4,
            ..Default::default()
        });
        let r = run(
            &sys,
            &SimConfig {
                seed: sim_seed,
                latency: LatencyModel::Uniform(1, 15),
                ..Default::default()
            },
        ).expect("valid config");
        prop_assert!(r.finished(), "runs must finish");
        prop_assert!(r.audit.legal.is_ok(), "{:?}", r.audit.legal);
        prop_assert!(projection_respects_site_orders(&sys, &r.audit.schedule));
    }

    /// Deterministic replay: same seed, same audit.
    #[test]
    fn simulator_replay_is_exact(seed in 0u64..100) {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 4,
            ..Default::default()
        });
        let cfg = SimConfig {
            seed,
            latency: LatencyModel::Uniform(1, 30),
            ..Default::default()
        };
        let a = run(&sys, &cfg).expect("valid config");
        let b = run(&sys, &cfg).expect("valid config");
        prop_assert_eq!(a.audit.schedule, b.audit.schedule);
        prop_assert_eq!(a.metrics, b.metrics);
    }
}
