//! Integration: the Theorem-2 decision procedure against the exact oracle
//! on randomized two-site workloads, across locking strategies.

use kplock::core::policy::LockStrategy;
use kplock::core::{
    decide_exhaustive, decide_two_site_system, OracleOptions, OracleOutcome, SafetyVerdict,
};
use kplock::workload::{random_pair, WorkloadParams};

fn check_agreement(params: &WorkloadParams) {
    let sys = random_pair(params);
    let verdict = decide_two_site_system(&sys).expect("two sites");
    let oracle = decide_exhaustive(&sys, &OracleOptions::default());
    let oracle_safe = match oracle.outcome {
        OracleOutcome::Safe => true,
        OracleOutcome::Unsafe(_) => false,
        OracleOutcome::Aborted => return, // too big; skip
    };
    assert_eq!(
        verdict.is_safe(),
        oracle_safe,
        "Theorem 2 disagrees with the oracle (seed {}, {:?})",
        params.seed,
        params.strategy
    );
    if let SafetyVerdict::Unsafe(cert) = &verdict {
        cert.verify(&sys).expect("certificate must verify");
    }
}

#[test]
fn theorem2_agrees_with_oracle_minimal_locking() {
    for seed in 0..60 {
        check_agreement(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 5,
            ..Default::default()
        });
    }
}

#[test]
fn theorem2_agrees_with_oracle_loose_two_phase() {
    for seed in 0..60 {
        check_agreement(&WorkloadParams {
            seed,
            strategy: LockStrategy::TwoPhaseLoose,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 5,
            ..Default::default()
        });
    }
}

#[test]
fn sync_two_phase_is_always_safe() {
    for seed in 0..60 {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::TwoPhaseSync,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 5,
            ..Default::default()
        });
        let verdict = decide_two_site_system(&sys).expect("two sites");
        assert!(
            verdict.is_safe(),
            "synchronized 2PL must be safe (seed {seed})"
        );
    }
}

#[test]
fn centralized_pairs_match_oracle_too() {
    // One site: the classical case; Theorem 2 degenerates to the
    // centralized strong-connectivity criterion.
    for seed in 0..40 {
        check_agreement(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 1,
            entities_per_site: 3,
            steps_per_txn: 6,
            ..Default::default()
        });
    }
}

#[test]
fn lemma1_extension_oracle_agrees_with_state_oracle() {
    for seed in 0..25 {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 4,
            ..Default::default()
        });
        let state = decide_exhaustive(&sys, &OracleOptions::default());
        let OracleOutcome::Safe = state.outcome else {
            // For unsafe systems check the extension oracle finds it too.
            let ext = kplock::core::decide_by_extensions(
                &sys,
                kplock::model::TxnId(0),
                kplock::model::TxnId(1),
                200_000,
            );
            if let Some(v) = ext {
                assert!(v.is_unsafe(), "seed {seed}");
                v.certificate().unwrap().verify(&sys).unwrap();
            }
            continue;
        };
        let ext = kplock::core::decide_by_extensions(
            &sys,
            kplock::model::TxnId(0),
            kplock::model::TxnId(1),
            200_000,
        );
        if let Some(v) = ext {
            assert!(v.is_safe(), "seed {seed}");
        }
    }
}
