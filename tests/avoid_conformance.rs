//! Paper-conformance suite for the avoidance arm: the runtime must agree
//! with what Theorems 1–3 promise, arm against arm.
//!
//! Three contracts, each checked on deterministic workloads:
//!
//! * **certified ⇒ silent** — on a fully certified set every resolution
//!   arm commits the same transactions, but only avoidance does it with
//!   zero deadlock-handling work of any kind (no cycles resolved, no
//!   wounds, no probes);
//! * **uncertified ⇒ wound-wait** — with an *empty* certificate the
//!   avoidance arm is field-identical to `Prevent(WoundWait)` on the
//!   pinned regression workloads: same metrics (up to the avoid
//!   counters, which only label the arm), same per-transaction commit
//!   epochs;
//! * **faults don't breach the certificate** — across the fault-plan
//!   ladder the avoidance arm never resolves a deadlock and passes the
//!   lock-table invariant audit, like every other arm.

use kplock::core::policy::LockStrategy;
use kplock::model::TxnId;
use kplock::sim::{
    run, AvoidPlan, DeadlockDetection, DeadlockResolution, LatencyModel, PreventionScheme,
    RunOutcome, SimConfig,
};
use kplock::workload::{
    avoid_mix_sweep, fault_sweep, fig5, random_system, WorkloadParams, FAULT_ARMS_WITH_AVOID,
};

/// The seed-23 workload of `tests/sim_regression.rs`.
fn seed23() -> kplock::model::TxnSystem {
    random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

/// On a fully certified set, every arm commits everything — but only
/// avoidance is *silent*: detection resolves its cycles (none exist
/// here), probes pay messages when cycles form, wound-wait may restart;
/// avoidance must show zeroes across the board.
#[test]
fn all_arms_agree_on_certified_sets_but_only_avoidance_is_silent() {
    for sc in avoid_mix_sweep(5, 4, 2, &[4]) {
        assert!(sc.plan.fully_certified());
        let base = SimConfig {
            latency: LatencyModel::Fixed(5),
            ..Default::default()
        };
        let arms: [(&str, SimConfig); 4] = [
            (
                "periodic",
                SimConfig {
                    resolution: DeadlockDetection::Periodic.into(),
                    ..base.clone()
                },
            ),
            (
                "probe",
                SimConfig {
                    resolution: DeadlockDetection::Probe.into(),
                    ..base.clone()
                },
            ),
            (
                "wound-wait",
                SimConfig {
                    resolution: PreventionScheme::WoundWait.into(),
                    ..base.clone()
                },
            ),
            ("avoid", sc.config(5)),
        ];
        let mut committed = Vec::new();
        for (name, cfg) in arms {
            let r = run(&sc.system, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "{name}");
            assert!(r.audit.serializable, "{name}");
            committed.push(r.metrics.committed);
            if name == "avoid" {
                assert_eq!(r.metrics.deadlocks_resolved, 0);
                assert_eq!(r.metrics.prevention_restarts, 0);
                assert_eq!(r.metrics.aborts, 0);
                assert_eq!(r.metrics.probe_messages, 0);
                assert_eq!(r.metrics.detection_latency_ticks, 0);
                assert_eq!(r.metrics.avoid_certified, sc.system.len());
                // First-try commits: no certified transaction restarts.
                assert!(r.committed_epoch.iter().all(|&e| e == Some(0)));
            }
        }
        assert!(
            committed.iter().all(|&c| c == sc.system.len()),
            "every arm commits the full set: {committed:?}"
        );
    }
}

/// With an empty certificate the avoidance arm *is* wound-wait: on the
/// pinned regression workloads the two runs agree field-for-field (the
/// avoid counters only label the arm) and transaction-for-transaction.
#[test]
fn empty_certificate_is_field_identical_to_wound_wait() {
    let cases: [(&str, kplock::model::TxnSystem, SimConfig); 3] = [
        (
            "seed23",
            seed23(),
            SimConfig {
                latency: LatencyModel::Fixed(5),
                ..Default::default()
            },
        ),
        (
            "fig5",
            fig5(),
            SimConfig {
                latency: LatencyModel::Uniform(1, 9),
                seed: 3,
                ..Default::default()
            },
        ),
        (
            "seed21",
            random_system(&WorkloadParams {
                seed: 21,
                sites: 3,
                entities_per_site: 2,
                transactions: 4,
                steps_per_txn: 6,
                strategy: LockStrategy::TwoPhaseSync,
                ..Default::default()
            }),
            SimConfig {
                latency: LatencyModel::Uniform(1, 20),
                seed: 7,
                ..Default::default()
            },
        ),
    ];
    for (name, sys, base) in cases {
        let empty = AvoidPlan::synthesize_restricted(&sys, &[]);
        assert_eq!(empty.certified_count(), 0);
        let avoid = run(
            &sys,
            &SimConfig {
                resolution: DeadlockResolution::Avoid,
                avoid: Some(empty),
                ..base.clone()
            },
        )
        .unwrap();
        let ww = run(
            &sys,
            &SimConfig {
                resolution: PreventionScheme::WoundWait.into(),
                ..base
            },
        )
        .unwrap();
        assert_eq!(avoid.outcome, ww.outcome, "{name}");
        assert_eq!(avoid.committed_epoch, ww.committed_epoch, "{name}");
        assert_eq!(avoid.audit.serializable, ww.audit.serializable, "{name}");
        // The avoid counters label the arm; everything else must match.
        let mut labelled = ww.metrics.clone();
        labelled.avoid_certified = avoid.metrics.avoid_certified;
        labelled.avoid_fallbacks = avoid.metrics.avoid_fallbacks;
        assert_eq!(avoid.metrics, labelled, "{name}");
        assert_eq!(avoid.metrics.avoid_certified, 0, "{name}");
        assert_eq!(avoid.metrics.avoid_fallbacks, sys.len(), "{name}");
    }
}

/// Mixed sets: the certificate shields exactly its members. Certified
/// transactions commit on their first attempt at every rung of the
/// certified-fraction sweep; fallback restarts are all wound-wait, and
/// no deadlock is ever *resolved* (none can form).
#[test]
fn the_certificate_shields_exactly_its_members() {
    for sc in avoid_mix_sweep(4, 4, 2, &[0, 1, 2, 3, 4]) {
        let r = run(&sc.system, &sc.config(5)).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed, "{}", sc.name);
        assert_eq!(r.metrics.deadlocks_resolved, 0, "{}", sc.name);
        assert_eq!(
            r.metrics.aborts, r.metrics.prevention_restarts,
            "{}",
            sc.name
        );
        assert!(r.audit.serializable, "{}", sc.name);
        for t in 0..sc.system.len() {
            if sc.plan.is_certified(TxnId::from_idx(t)) {
                assert_eq!(
                    r.committed_epoch[t],
                    Some(0),
                    "{}: certified T{} must commit first-try",
                    sc.name,
                    t + 1
                );
            }
        }
    }
}

/// The fault axis cannot breach the certificate: across the whole
/// fault-plan ladder (loss, duplication, reordering, crashes) the
/// avoidance arm still never resolves a deadlock, never stalls, and
/// passes the per-step lock-table invariant audit — while the companion
/// probe and wound-wait arms keep their own contracts on the same runs.
#[test]
fn faults_do_not_breach_the_certificate() {
    for sc in fault_sweep(4, 3, 2, &[0.15], &FAULT_ARMS_WITH_AVOID) {
        let cfg = SimConfig {
            invariant_audit: true,
            max_time: 400_000,
            ..sc.config(5)
        };
        let r = run(&sc.system, &cfg).unwrap();
        assert_ne!(r.outcome, RunOutcome::Stalled, "{}", sc.name);
        if sc.resolution == DeadlockResolution::Avoid {
            assert_eq!(r.metrics.deadlocks_resolved, 0, "{}", sc.name);
            assert_eq!(r.metrics.probe_messages, 0, "{}", sc.name);
        }
        if r.outcome == RunOutcome::Completed {
            assert!(r.audit.serializable, "{}", sc.name);
        }
    }
}
