//! Integration: the simulator respects the theory.
//!
//! * Systems proven safe never commit a non-serializable history, under any
//!   seed/latency/victim-policy combination.
//! * Systems proven unsafe exhibit an anomaly for some timing.
//! * Runs are deterministic given a seed.

use kplock::core::policy::LockStrategy;
use kplock::core::{analyze_pair, SafetyVerdict};
use kplock::sim::{run, LatencyModel, SimConfig, VictimPolicy};
use kplock::workload::{fig1, fig3, random_pair, WorkloadParams};

#[test]
fn safe_systems_never_commit_anomalies() {
    let mut safe_checked = 0;
    for seed in 0..30 {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::TwoPhaseSync,
            sites: 2,
            entities_per_site: 2,
            steps_per_txn: 5,
            ..Default::default()
        });
        let verdict = analyze_pair(&sys).verdict;
        assert!(matches!(verdict, SafetyVerdict::Safe(_)));
        safe_checked += 1;
        for sim_seed in 0..20 {
            for policy in [VictimPolicy::Youngest, VictimPolicy::Oldest] {
                let cfg = SimConfig {
                    seed: sim_seed,
                    latency: LatencyModel::Uniform(1, 25),
                    victim_policy: policy,
                    ..Default::default()
                };
                let r = run(&sys, &cfg).expect("valid config");
                assert!(r.finished(), "workload seed {seed}, sim seed {sim_seed}");
                r.audit.legal.as_ref().unwrap();
                assert!(
                    r.audit.serializable,
                    "safe system committed an anomaly (workload {seed}, sim {sim_seed})"
                );
            }
        }
    }
    assert!(safe_checked > 0);
}

#[test]
fn fig1_exhibits_anomaly_for_some_timing() {
    let sys = fig1();
    let found = (0..400).any(|seed| {
        let cfg = SimConfig {
            seed,
            latency: LatencyModel::Uniform(1, 60),
            ..Default::default()
        };
        let r = run(&sys, &cfg).expect("valid config");
        r.finished() && !r.audit.serializable
    });
    assert!(
        found,
        "Fig. 1 is unsafe; some timing must commit an anomaly"
    );
}

#[test]
fn fig3_exhibits_anomaly_for_some_timing() {
    let sys = fig3();
    let found = (0..400).any(|seed| {
        let cfg = SimConfig {
            seed,
            latency: LatencyModel::Uniform(1, 60),
            ..Default::default()
        };
        let r = run(&sys, &cfg).expect("valid config");
        r.finished() && !r.audit.serializable
    });
    assert!(
        found,
        "Fig. 3 is unsafe; some timing must commit an anomaly"
    );
}

#[test]
fn runs_are_reproducible() {
    let sys = fig1();
    for seed in [0u64, 17, 99] {
        let cfg = SimConfig {
            seed,
            latency: LatencyModel::Uniform(1, 50),
            ..Default::default()
        };
        let a = run(&sys, &cfg).expect("valid config");
        let b = run(&sys, &cfg).expect("valid config");
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.audit.serializable, b.audit.serializable);
        assert_eq!(a.audit.schedule, b.audit.schedule);
    }
}

#[test]
fn victim_policy_ablation_both_terminate() {
    // Deadlock-heavy workload: opposite lock orders.
    let sys = random_pair(&WorkloadParams {
        seed: 5,
        strategy: LockStrategy::TwoPhaseSync,
        sites: 2,
        entities_per_site: 3,
        steps_per_txn: 6,
        ..Default::default()
    });
    for policy in [VictimPolicy::Youngest, VictimPolicy::Oldest] {
        for seed in 0..10 {
            let cfg = SimConfig {
                seed,
                latency: LatencyModel::Uniform(1, 10),
                victim_policy: policy,
                ..Default::default()
            };
            let r = run(&sys, &cfg).expect("valid config");
            assert!(r.finished(), "{policy:?} seed {seed}");
            assert!(r.audit.serializable);
        }
    }
}
