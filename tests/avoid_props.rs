//! Property-based invariants for the avoidance arm: a certified set can
//! never engage any deadlock machinery.
//!
//! The paper's Theorems 1–3 decide safety of a *declared* transaction
//! set before anything runs; `AvoidPlan` packages that decision as a safe
//! lock order plus per-site controllers. The runtime claim tested here is
//! absolute: on **any** workload whose transactions are all certified,
//! an avoidance run resolves zero deadlocks, restarts nothing, sends no
//! detection traffic, and completes — the guarantee is structural, not
//! statistical, so it must hold for every generated case, not most.

use kplock::core::policy::LockStrategy;
use kplock::model::TxnSystem;
use kplock::sim::{run, AvoidPlan, DeadlockResolution, RunOutcome, SimConfig};
use kplock::workload::{random_system, WorkloadParams};
use proptest::prelude::*;

fn system(seed: u64, sites: usize, txns: usize) -> TxnSystem {
    random_system(&WorkloadParams {
        seed,
        sites,
        entities_per_site: 2,
        transactions: txns,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fully-certified workloads run clean: carve the greedy certificate
    /// out of a random system into its own (by construction fully
    /// certified) sub-system and run it under avoidance — no deadlock is
    /// resolved, nothing restarts, no probe crosses the wire, everything
    /// commits serializably.
    #[test]
    fn certified_sets_never_engage_deadlock_machinery(
        seed in 0u64..500,
        sim_seed in 0u64..50,
        sites in 2usize..5,
        txns in 2usize..6,
    ) {
        let sys = system(seed, sites, txns);
        let greedy = AvoidPlan::synthesize(&sys);
        prop_assert!(greedy.verify(&sys).is_ok(), "synthesized plans self-verify");
        prop_assert_eq!(
            greedy.certified_count() + greedy.fallback_count(),
            sys.len(),
            "the certificate partitions the declared set"
        );
        let certified = greedy.certified();
        // A transaction whose partial order leaves two lock steps
        // concurrent is uncertifiable even alone (it constrains both
        // directions), so a rare workload certifies nothing — skip it;
        // the remaining ~250 cases keep the property non-vacuous.
        if certified.is_empty() {
            return Ok(());
        }
        let sub = TxnSystem::new(
            sys.db().clone(),
            certified
                .iter()
                .map(|t| sys.txns()[t.idx()].clone())
                .collect(),
        );
        // A jointly-certified set re-certifies in full: greedy merged
        // exactly these edge digraphs into one acyclic union.
        let plan = AvoidPlan::synthesize(&sub);
        prop_assert!(plan.fully_certified(), "seed {}: carved set must re-certify", seed);
        let cfg = SimConfig {
            latency: kplock::sim::LatencyModel::Uniform(1, 20),
            seed: sim_seed,
            resolution: DeadlockResolution::Avoid,
            avoid: Some(plan),
            ..Default::default()
        };
        let r = run(&sub, &cfg).unwrap();
        prop_assert_eq!(
            r.outcome,
            RunOutcome::Completed,
            "certified sets always finish (seed {}, sim {})", seed, sim_seed
        );
        prop_assert_eq!(r.metrics.deadlocks_resolved, 0, "no cycle can form");
        prop_assert_eq!(r.metrics.prevention_restarts, 0, "the fallback never engages");
        prop_assert_eq!(r.metrics.aborts, 0);
        prop_assert_eq!(r.metrics.probe_messages, 0);
        prop_assert_eq!(r.metrics.detection_latency_ticks, 0);
        prop_assert_eq!(r.metrics.avoid_certified, sub.len());
        prop_assert_eq!(r.metrics.avoid_fallbacks, 0);
        prop_assert_eq!(r.metrics.committed, sub.len());
        prop_assert!(r.audit.serializable, "sync-2PL must audit clean");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixed sets stay cycle-free and finish: the greedy certificate on
    /// the *full* random system shields what it covers while wound-wait
    /// meters the rest — still no resolved deadlock anywhere, and every
    /// abort is a fallback restart.
    #[test]
    fn mixed_sets_complete_without_resolving_a_deadlock(
        seed in 0u64..300,
        sim_seed in 0u64..50,
        sites in 2usize..5,
        txns in 2usize..6,
    ) {
        let sys = system(seed, sites, txns);
        let plan = AvoidPlan::synthesize(&sys);
        let cfg = SimConfig {
            latency: kplock::sim::LatencyModel::Uniform(1, 20),
            seed: sim_seed,
            resolution: DeadlockResolution::Avoid,
            avoid: Some(plan.clone()),
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        prop_assert_eq!(
            r.outcome,
            RunOutcome::Completed,
            "certified transactions cannot be wounded and the fallback is \
             wound-wait, which terminates (seed {}, sim {})", seed, sim_seed
        );
        prop_assert_eq!(r.metrics.deadlocks_resolved, 0);
        prop_assert_eq!(r.metrics.probe_messages, 0);
        prop_assert_eq!(r.metrics.aborts, r.metrics.prevention_restarts);
        prop_assert_eq!(r.metrics.avoid_certified, plan.certified_count());
        prop_assert_eq!(r.metrics.avoid_fallbacks, plan.fallback_count());
        prop_assert!(r.audit.serializable);
        // Certified transactions are never victims: they commit on their
        // first attempt, epoch 0.
        for t in plan.certified() {
            prop_assert_eq!(
                r.committed_epoch[t.idx()],
                Some(0),
                "certified {:?} was restarted (seed {}, sim {})", t, seed, sim_seed
            );
        }
        // Deterministic replay, like every other arm.
        let again = run(&sys, &cfg).unwrap();
        prop_assert_eq!(r.metrics, again.metrics);
        prop_assert_eq!(r.committed_epoch, again.committed_epoch);
    }
}
