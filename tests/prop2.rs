//! Integration: Proposition 2 (k transactions) against the exact oracle on
//! randomized centralized and two-site systems.

use kplock::core::policy::LockStrategy;
use kplock::core::{
    decide_exhaustive, proposition2, OracleOptions, OracleOutcome, Prop2Options, Prop2Verdict,
};
use kplock::workload::{random_system, WorkloadParams};

fn run_case(params: &WorkloadParams) -> Option<(bool, bool)> {
    let sys = random_system(params);
    let report = proposition2(&sys, &Prop2Options::default());
    let prop2_safe = match report.verdict {
        Prop2Verdict::Safe => true,
        Prop2Verdict::UnsafePair | Prop2Verdict::UnsafeCycle => false,
        Prop2Verdict::Unknown => return None,
    };
    let oracle = decide_exhaustive(
        &sys,
        &OracleOptions {
            max_states: 4_000_000,
        },
    );
    let oracle_safe = match oracle.outcome {
        OracleOutcome::Safe => true,
        OracleOutcome::Unsafe(_) => false,
        OracleOutcome::Aborted => return None,
    };
    Some((prop2_safe, oracle_safe))
}

#[test]
fn prop2_agrees_with_oracle_centralized_three_txns() {
    let mut checked = 0;
    for seed in 0..40 {
        let params = WorkloadParams {
            seed,
            sites: 1,
            entities_per_site: 3,
            transactions: 3,
            steps_per_txn: 4,
            strategy: LockStrategy::Minimal,
            ..Default::default()
        };
        if let Some((p, o)) = run_case(&params) {
            assert_eq!(p, o, "Proposition 2 disagrees with oracle (seed {seed})");
            checked += 1;
        }
    }
    assert!(checked >= 20, "too many skipped cases ({checked} checked)");
}

#[test]
fn prop2_agrees_with_oracle_two_sites() {
    let mut checked = 0;
    for seed in 0..40 {
        let params = WorkloadParams {
            seed,
            sites: 2,
            entities_per_site: 2,
            transactions: 3,
            steps_per_txn: 4,
            strategy: LockStrategy::Minimal,
            ..Default::default()
        };
        if let Some((p, o)) = run_case(&params) {
            assert_eq!(p, o, "Proposition 2 disagrees with oracle (seed {seed})");
            checked += 1;
        }
    }
    assert!(checked >= 20, "too many skipped cases ({checked} checked)");
}

#[test]
fn sync_two_phase_systems_pass_prop2() {
    for seed in 0..20 {
        let sys = random_system(&WorkloadParams {
            seed,
            sites: 2,
            entities_per_site: 2,
            transactions: 4,
            steps_per_txn: 4,
            strategy: LockStrategy::TwoPhaseSync,
            ..Default::default()
        });
        let report = proposition2(&sys, &Prop2Options::default());
        assert_eq!(report.verdict, Prop2Verdict::Safe, "seed {seed}");
    }
}
