//! Differential pins for the fault axis.
//!
//! Two contracts keep fault injection honest:
//!
//! * **`FaultPlan::none()` is invisible.** The fault chokepoint, the
//!   idempotency guards and the lease plumbing all gate on the plan, so a
//!   run with the explicit empty plan must produce a `SimReport`
//!   byte-identical to the fault-free engine's — pinned here against the
//!   same fixed-seed constants `tests/sim_regression.rs` has carried
//!   since PR 2/PR 4 (re-derived there, restated here so a drift in
//!   either file fails both).
//! * **Duplication alone changes nothing observable.** A plan that only
//!   duplicates (no loss, no crash) stresses every idempotency argument —
//!   re-grants, re-releases, re-acks, duplicate wounds and abort orders —
//!   but a correct engine absorbs all of it: the run completes, commits
//!   exactly the fault-free committed set, and audits serializable.

use kplock::core::policy::LockStrategy;
use kplock::sim::{
    run, FaultPlan, LatencyModel, Metrics, PreventionScheme, RunOutcome, SimConfig, VictimPolicy,
};
use kplock::workload::{fig5, random_system, WorkloadParams};

fn metrics(m: &Metrics) -> (usize, usize, u64, u64, usize, u64) {
    (
        m.committed,
        m.aborts,
        m.messages,
        m.lock_wait_ticks,
        m.deadlocks_resolved,
        m.makespan,
    )
}

// The same pinned constants as tests/sim_regression.rs (PR 2 defaults,
// PR 4 prevention arms). If an intentional semantic change re-derives
// them there, re-derive them here too.
const PIN_RANDOM: (usize, usize, u64, u64, usize, u64) = (4, 1, 122, 875, 1, 402);
const PIN_FIG5: (usize, usize, u64, u64, usize, u64) = (2, 0, 48, 54, 0, 53);
const PIN_WAIT_DIE: (usize, usize, u64, u64, usize, u64) = (4, 9, 136, 80, 0, 287);

fn seed21() -> kplock::model::TxnSystem {
    random_system(&WorkloadParams {
        seed: 21,
        sites: 3,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

fn seed23() -> kplock::model::TxnSystem {
    random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

#[test]
fn explicit_none_plan_reproduces_the_regression_pins_bit_for_bit() {
    // Default-detection pin, seed-21 workload.
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 20),
        seed: 7,
        faults: FaultPlan::none(),
        ..Default::default()
    };
    let r = run(&seed21(), &cfg).unwrap();
    assert_eq!(
        metrics(&r.metrics),
        PIN_RANDOM,
        "actual: {:?}",
        metrics(&r.metrics)
    );
    // Fig. 5 pin.
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 9),
        seed: 3,
        faults: FaultPlan::none(),
        ..Default::default()
    };
    let r = run(&fig5(), &cfg).unwrap();
    assert_eq!(
        metrics(&r.metrics),
        PIN_FIG5,
        "actual: {:?}",
        metrics(&r.metrics)
    );
    // A prevention arm pin (wait-die restarts, seed-23 workload).
    let cfg = SimConfig {
        latency: LatencyModel::Fixed(5),
        resolution: PreventionScheme::WaitDie.into(),
        faults: FaultPlan::none(),
        ..Default::default()
    };
    let r = run(&seed23(), &cfg).unwrap();
    assert_eq!(
        metrics(&r.metrics),
        PIN_WAIT_DIE,
        "actual: {:?}",
        metrics(&r.metrics)
    );
    // The fault counters exist but read zero on the clean path.
    assert_eq!(r.metrics.messages_dropped, 0);
    assert_eq!(r.metrics.messages_duplicated, 0);
    assert_eq!(r.metrics.leases_expired, 0);
    assert_eq!(r.metrics.recoveries, 0);
}

#[test]
fn none_plan_is_field_identical_to_the_default_config_run() {
    // Belt and braces for the pin above: the whole Metrics struct (not
    // just the pinned projection) and the committed epochs must match
    // between a default config and one with the explicit empty plan, on
    // both a detection and a prevention arm.
    for resolution in [
        kplock::sim::DeadlockResolution::default(),
        PreventionScheme::WoundWait.into(),
    ] {
        let base = SimConfig {
            latency: LatencyModel::Uniform(1, 20),
            seed: 11,
            resolution,
            victim_policy: VictimPolicy::Oldest,
            ..Default::default()
        };
        let explicit = SimConfig {
            faults: FaultPlan::none(),
            ..base.clone()
        };
        let a = run(&seed23(), &base).unwrap();
        let b = run(&seed23(), &explicit).unwrap();
        assert_eq!(a.metrics, b.metrics, "{resolution:?}");
        assert_eq!(a.committed_epoch, b.committed_epoch);
        assert_eq!(a.outcome, b.outcome);
    }
}

#[test]
fn duplication_only_plans_commit_the_fault_free_transaction_set() {
    // Every message duplicated with reorder jitter on the copies, across
    // all six resolution arms and both pinned workloads: the committed
    // set must equal the fault-free run's, epoch-for-epoch irrelevant but
    // membership exact, and the audit clean. This is the idempotency
    // argument of every handler, exercised at full strength (dup rate 1.0
    // doubles literally every wire message).
    use kplock::sim::{DeadlockDetection, DeadlockResolution};
    let arms: [DeadlockResolution; 6] = [
        DeadlockDetection::Periodic.into(),
        DeadlockDetection::OnBlock.into(),
        DeadlockDetection::Probe.into(),
        PreventionScheme::WoundWait.into(),
        PreventionScheme::WaitDie.into(),
        PreventionScheme::NoWait.into(),
    ];
    for (name, sys) in [("seed21", seed21()), ("seed23", seed23())] {
        for resolution in arms {
            let base = SimConfig {
                latency: LatencyModel::Fixed(5),
                resolution,
                invariant_audit: true,
                ..Default::default()
            };
            let clean = run(&sys, &base).unwrap();
            assert_eq!(
                clean.outcome,
                RunOutcome::Completed,
                "{name} {resolution:?}"
            );
            let dup = SimConfig {
                faults: FaultPlan {
                    duplication: 1.0,
                    reorder: 0.3,
                    reorder_window: 6,
                    seed: 5,
                    ..FaultPlan::none()
                },
                ..base
            };
            let r = run(&sys, &dup).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "{name} {resolution:?}");
            assert_eq!(
                r.metrics.committed, clean.metrics.committed,
                "{name} {resolution:?}: same committed transaction set"
            );
            assert!(r.metrics.messages_duplicated > 0);
            assert_eq!(r.metrics.messages_dropped, 0, "dup-only plans lose nothing");
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable, "{name} {resolution:?}");
        }
    }
}

#[test]
fn faulty_runs_replay_bit_identically() {
    // Determinism is the axis's measurement contract: same plan, same
    // report — including the fault counters — for a plan exercising all
    // three channel faults plus a crash.
    use kplock::sim::SiteCrash;
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 20),
        seed: 9,
        invariant_audit: true,
        faults: FaultPlan {
            seed: 17,
            loss: 0.15,
            duplication: 0.15,
            reorder: 0.15,
            reorder_window: 8,
            retransmit_after: 90,
            lease_ttl: 50,
            crashes: vec![SiteCrash {
                site: 1,
                at: 60,
                down_for: 120,
            }],
        },
        max_time: 500_000,
        ..Default::default()
    };
    let a = run(&seed23(), &cfg).unwrap();
    let b = run(&seed23(), &cfg).unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.committed_epoch, b.committed_epoch);
    assert_eq!(a.outcome, b.outcome);
    assert!(
        a.metrics.messages_dropped > 0 || a.metrics.messages_duplicated > 0,
        "the plan must actually have injected faults"
    );
}
