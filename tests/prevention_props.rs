//! Property-based invariants for timestamp-ordering deadlock prevention,
//! plus fixed equivalence checks against the detection arm.
//!
//! The schemes' claim (Rosenkrantz–Stearns–Lewis) is structural: because a
//! wait is admitted only when it points the right way along the birth
//! order — old → young under wait-die, young → old under wound-wait,
//! nowhere under no-wait — the waits-for relation embeds in a strict
//! order and **no cycle can ever form**. Observably, on any workload:
//!
//! * a prevention run never reports a resolved deadlock (there is no
//!   detector and nothing for one to find), never stalls (a stall is an
//!   unbroken cycle), and spends zero probe messages;
//! * wound-wait and wait-die always complete: the globally oldest
//!   transaction can be neither wounded nor killed, so it commits, and
//!   induction finishes the rest (no-wait completes on these workloads
//!   too, but its guarantee is only probabilistic — jittered backoff);
//! * under synchronized 2PL the committed history audits serializable,
//!   exactly as under detection.

use kplock::core::policy::LockStrategy;
use kplock::sim::{run, DeadlockDetection, PreventionScheme, RunOutcome, SimConfig};
use kplock::workload::{fig5, random_system, WorkloadParams};
use proptest::prelude::*;

const SCHEMES: [PreventionScheme; 3] = [
    PreventionScheme::WoundWait,
    PreventionScheme::WaitDie,
    PreventionScheme::NoWait,
];

fn system(seed: u64, sites: usize, txns: usize) -> kplock::model::TxnSystem {
    random_system(&WorkloadParams {
        seed,
        sites,
        entities_per_site: 2,
        transactions: txns,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// No cycle ever forms: prevention runs on random multi-site sync-2PL
    /// systems complete with zero resolved deadlocks and no detection
    /// traffic, and every abort is a prevention restart.
    #[test]
    fn prevention_admits_no_cycle_and_completes(
        seed in 0u64..300,
        sim_seed in 0u64..50,
        sites in 2usize..5,
        txns in 2usize..6,
        scheme_idx in 0usize..3,
    ) {
        let sys = system(seed, sites, txns);
        let scheme = SCHEMES[scheme_idx];
        let cfg = SimConfig {
            latency: kplock::sim::LatencyModel::Uniform(1, 20),
            seed: sim_seed,
            resolution: scheme.into(),
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        prop_assert_ne!(
            r.outcome,
            RunOutcome::Stalled,
            "a stall is an unbroken cycle — impossible under {:?} (seed {}, sim {})",
            scheme, seed, sim_seed
        );
        prop_assert_eq!(r.metrics.deadlocks_resolved, 0, "{:?} has no detector", scheme);
        prop_assert_eq!(r.metrics.probe_messages, 0);
        prop_assert_eq!(r.metrics.detection_latency_ticks, 0);
        prop_assert_eq!(
            r.metrics.aborts, r.metrics.prevention_restarts,
            "every abort under prevention is a prevention restart"
        );
        prop_assert!(
            r.metrics.committed <= sys.len(),
            "a transaction committed twice — an in-flight wound must not \
             abort (and re-run) an already-committed victim"
        );
        // Wound-wait and wait-die carry a hard termination guarantee.
        if scheme != PreventionScheme::NoWait {
            prop_assert_eq!(
                r.outcome,
                RunOutcome::Completed,
                "{:?} must commit everything (seed {}, sim {})",
                scheme, seed, sim_seed
            );
        }
        if r.finished() {
            prop_assert_eq!(r.metrics.committed, sys.len());
            prop_assert!(r.audit.serializable, "sync-2PL must audit clean");
        }
    }

    /// Skewed hot-site load concentrates the conflicts — the restart-heavy
    /// worst case for prevention. The invariants must hold regardless.
    #[test]
    fn prevention_survives_hot_site_skew(seed in 0u64..200, hot in 50u32..=100, scheme_idx in 0usize..3) {
        let sys = random_system(&WorkloadParams {
            seed,
            sites: 3,
            entities_per_site: 2,
            transactions: 4,
            steps_per_txn: 5,
            hot_site_percent: hot,
            strategy: LockStrategy::TwoPhaseSync,
            ..Default::default()
        });
        let scheme = SCHEMES[scheme_idx];
        let cfg = SimConfig {
            latency: kplock::sim::LatencyModel::Fixed(5),
            resolution: scheme.into(),
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        prop_assert_ne!(r.outcome, RunOutcome::Stalled);
        prop_assert_eq!(r.metrics.deadlocks_resolved, 0);
        if scheme != PreventionScheme::NoWait {
            prop_assert_eq!(r.outcome, RunOutcome::Completed);
        }
        if r.finished() {
            prop_assert!(r.audit.serializable);
        }
    }
}

/// On the pinned *deadlock-free* regression workloads (fig5 and the
/// seed-23 system, whose pinned detection runs resolve zero deadlocks —
/// see `tests/sim_regression.rs`), every prevention scheme must commit
/// exactly the transaction set the detector commits: everything. Where
/// the detector also never aborted, the committed *sets* agree trivially;
/// the point pinned here is that prevention introduces no spurious
/// incompleteness and stays serializable on workloads where it has
/// nothing to prevent.
#[test]
fn prevention_commits_the_detectors_transaction_set_on_deadlock_free_pins() {
    let seed23 = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cases: [(&str, kplock::model::TxnSystem, SimConfig); 2] = [
        (
            "fig5",
            fig5(),
            SimConfig {
                latency: kplock::sim::LatencyModel::Uniform(1, 9),
                seed: 3,
                ..Default::default()
            },
        ),
        (
            "seed23",
            seed23,
            SimConfig {
                latency: kplock::sim::LatencyModel::Fixed(5),
                victim_policy: kplock::sim::VictimPolicy::Oldest,
                ..Default::default()
            },
        ),
    ];
    for (name, sys, base) in cases {
        let detect = run(
            &sys,
            &SimConfig {
                resolution: DeadlockDetection::Periodic.into(),
                ..base.clone()
            },
        )
        .unwrap();
        assert!(detect.finished());
        assert_eq!(
            detect.metrics.deadlocks_resolved, 0,
            "{name} must be deadlock-free under detection for this test"
        );
        for scheme in SCHEMES {
            let prevent = run(
                &sys,
                &SimConfig {
                    resolution: scheme.into(),
                    ..base.clone()
                },
            )
            .unwrap();
            assert_eq!(
                prevent.outcome,
                RunOutcome::Completed,
                "{name} under {scheme:?}"
            );
            assert_eq!(
                prevent.metrics.committed, detect.metrics.committed,
                "{name} under {scheme:?}: same committed transaction set"
            );
            assert_eq!(prevent.metrics.deadlocks_resolved, 0);
            assert!(prevent.audit.serializable, "{name} under {scheme:?}");
        }
    }
}

/// Determinism: prevention runs replay bit-identically, like every other
/// resolution arm (same seed, same report).
#[test]
fn prevention_runs_are_deterministic() {
    let sys = system(23, 2, 4);
    for scheme in SCHEMES {
        let cfg = SimConfig {
            latency: kplock::sim::LatencyModel::Uniform(1, 20),
            seed: 9,
            resolution: scheme.into(),
            ..Default::default()
        };
        let a = run(&sys, &cfg).unwrap();
        let b = run(&sys, &cfg).unwrap();
        assert_eq!(a.metrics, b.metrics, "{scheme:?}");
        assert_eq!(a.committed_epoch, b.committed_epoch);
    }
}
