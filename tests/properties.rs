//! Property-based tests (proptest) for the paper's core invariants.

use kplock::core::policy::LockStrategy;
use kplock::core::{decide_total_pair, ConflictDigraph, SafetyVerdict};
use kplock::geometry::{plane_is_safe, PlanePicture};
use kplock::model::{linear_extensions, TxnId, TxnSystem};
use kplock::workload::{random_pair, WorkloadParams};
use proptest::prelude::*;

fn small_pair(seed: u64, strategy: LockStrategy) -> TxnSystem {
    random_pair(&WorkloadParams {
        seed,
        strategy,
        sites: 2,
        entities_per_site: 2,
        steps_per_txn: 4,
        cross_edge_percent: 40,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fig. 4 / Definition 1 semantics: an arc (x, y) of D(T1,T2) exists
    /// iff in EVERY pair of linear extensions, Lx precedes Uy in t1 and Ly
    /// precedes Ux in t2.
    #[test]
    fn definition1_arcs_quantify_over_all_extensions(seed in 0u64..500) {
        let sys = small_pair(seed, LockStrategy::Minimal);
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        let t1 = sys.txn(TxnId(0));
        let t2 = sys.txn(TxnId(1));
        let e1 = linear_extensions(t1);
        let e2 = linear_extensions(t2);
        for (i, &x) in d.entities.iter().enumerate() {
            for (j, &y) in d.entities.iter().enumerate() {
                if i == j { continue; }
                let lx = t1.lock_step(x).unwrap();
                let uy = t1.unlock_step(y).unwrap();
                let ly = t2.lock_step(y).unwrap();
                let ux = t2.unlock_step(x).unwrap();
                let holds_everywhere = e1.iter().all(|o| {
                    o.iter().position(|&s| s == lx).unwrap()
                        < o.iter().position(|&s| s == uy).unwrap()
                }) && e2.iter().all(|o| {
                    o.iter().position(|&s| s == ly).unwrap()
                        < o.iter().position(|&s| s == ux).unwrap()
                });
                prop_assert_eq!(
                    d.graph.has_edge(i, j),
                    holds_everywhere,
                    "arc ({:?},{:?}) mismatch", x, y
                );
            }
        }
    }

    /// D of the partial orders is contained in D of any extension pair.
    #[test]
    fn d_graph_monotone_under_linearization(seed in 0u64..500) {
        let sys = small_pair(seed, LockStrategy::Minimal);
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        let t1 = sys.txn(TxnId(0));
        let t2 = sys.txn(TxnId(1));
        let e1 = linear_extensions(t1).into_iter().next().unwrap();
        let e2 = linear_extensions(t2).into_iter().next().unwrap();
        let lin = TxnSystem::new(
            sys.db().clone(),
            vec![t1.linearized(&e1).unwrap(), t2.linearized(&e2).unwrap()],
        );
        // Map entities: ids are unchanged by linearization.
        let d_lin = ConflictDigraph::build(&lin, TxnId(0), TxnId(1));
        for (u, v) in d.graph.edges() {
            prop_assert!(
                d_lin.graph.has_edge(u, v),
                "extension lost an arc"
            );
        }
    }

    /// For pairs of TOTAL orders, the graph method and the geometric method
    /// (Proposition 1) agree exactly.
    #[test]
    fn total_order_graph_equals_geometry(seed in 0u64..500) {
        let sys = small_pair(seed, LockStrategy::Minimal);
        let t1 = sys.txn(TxnId(0));
        let t2 = sys.txn(TxnId(1));
        let e1 = linear_extensions(t1).into_iter().next().unwrap();
        let e2 = linear_extensions(t2).into_iter().next().unwrap();
        let lin = TxnSystem::new(
            sys.db().clone(),
            vec![t1.linearized(&e1).unwrap(), t2.linearized(&e2).unwrap()],
        );
        let graph_verdict = decide_total_pair(&lin, TxnId(0), TxnId(1));
        let plane = PlanePicture::new(&lin, TxnId(0), TxnId(1)).unwrap();
        prop_assert_eq!(graph_verdict.is_safe(), plane_is_safe(&plane));
        if let SafetyVerdict::Unsafe(cert) = &graph_verdict {
            prop_assert!(cert.verify(&lin).is_ok());
        }
    }

    /// Theorem 1 soundness on arbitrary (multi-site) pairs: strong
    /// connectivity of D implies every extension plane is safe.
    #[test]
    fn theorem1_sound_for_random_pairs(seed in 0u64..300) {
        let sys = random_pair(&WorkloadParams {
            seed,
            strategy: LockStrategy::Minimal,
            sites: 3,
            entities_per_site: 1,
            steps_per_txn: 4,
            cross_edge_percent: 50,
            ..Default::default()
        });
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        if !d.is_strongly_connected() {
            return Ok(());
        }
        let t1 = sys.txn(TxnId(0));
        let t2 = sys.txn(TxnId(1));
        for e1 in linear_extensions(t1).into_iter().take(12) {
            for e2 in linear_extensions(t2).into_iter().take(12) {
                let lin = TxnSystem::new(
                    sys.db().clone(),
                    vec![t1.linearized(&e1).unwrap(), t2.linearized(&e2).unwrap()],
                );
                let plane = PlanePicture::new(&lin, TxnId(0), TxnId(1)).unwrap();
                prop_assert!(plane_is_safe(&plane), "Theorem 1 violated");
            }
        }
    }

    /// The schedule embedded in any Theorem-2 certificate is reproducible:
    /// legal, complete, and its serialization graph has a cycle through the
    /// dominator entities.
    #[test]
    fn certificates_always_verify(seed in 0u64..500) {
        let sys = small_pair(seed, LockStrategy::Minimal);
        let verdict = kplock::core::decide_two_site_system(&sys).unwrap();
        if let SafetyVerdict::Unsafe(cert) = verdict {
            prop_assert!(cert.verify(&sys).is_ok());
            prop_assert!(!cert.dominator.is_empty());
        }
    }
}
