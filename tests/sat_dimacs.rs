//! DIMACS I/O properties: `print` and `parse` are exact inverses on the
//! generator's whole output range, and the parser's error paths reject
//! malformed input rather than guessing.

use kplock::sat::dimacs::{parse, print, DimacsError};
use kplock::sat::{random_kcnf, random_restricted, solve, Cnf, SatResult};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print ∘ parse is the identity on random k-CNF, and the round trip
    /// preserves the DPLL verdict.
    #[test]
    fn kcnf_roundtrips_exactly(
        seed in 0u64..100_000,
        vars in 3usize..30, // ≥ max clause width: random_kcnf needs k ≤ vars
        clauses in 0usize..60,
        k in 1usize..4,
    ) {
        let f = random_kcnf(seed, vars, clauses, k);
        let g = parse(&print(&f)).expect("printed text parses");
        prop_assert_eq!(&f, &g, "seed {}: round trip changed the formula", seed);
        prop_assert_eq!(
            solve(&f).is_sat(),
            solve(&g).is_sat(),
            "seed {}: round trip changed the verdict", seed
        );
    }

    /// The paper's restricted form survives the round trip too (it is the
    /// Theorem-3 reduction's input class, so the CLI must not corrupt it).
    #[test]
    fn restricted_form_roundtrips_exactly(
        seed in 0u64..100_000,
        vars in 1usize..25,
        clauses in 1usize..40,
    ) {
        let f = random_restricted(seed, vars, clauses);
        let g = parse(&print(&f)).expect("printed text parses");
        prop_assert_eq!(f, g);
    }
}

#[test]
fn parser_rejects_malformed_input() {
    // Clauses before any header: the declared range is unknown.
    assert_eq!(parse("1 -2 0"), Err(DimacsError::BadHeader));
    // Header with the wrong arity or tag.
    assert_eq!(parse("p cnf 3"), Err(DimacsError::BadHeader));
    assert_eq!(parse("p sat 3 1\n1 0"), Err(DimacsError::BadHeader));
    assert_eq!(parse("p cnf three 1\n1 0"), Err(DimacsError::BadHeader));
    // Non-integer literal tokens.
    assert!(matches!(
        parse("p cnf 2 1\n1 x 0"),
        Err(DimacsError::BadToken(_))
    ));
    // Literals beyond the declared variable count, both polarities.
    assert_eq!(parse("p cnf 2 1\n3 0"), Err(DimacsError::VarOutOfRange(3)));
    assert_eq!(
        parse("p cnf 2 1\n-3 0"),
        Err(DimacsError::VarOutOfRange(-3))
    );
}

#[test]
fn trailing_unterminated_clause_is_kept() {
    // DIMACS requires a trailing 0, but a final unterminated clause is
    // accepted rather than silently dropped — pin that behavior.
    let f = parse("p cnf 2 2\n1 0\n-1 2").expect("parses");
    assert_eq!(f.clauses.len(), 2);
    assert_eq!(f, parse(&print(&f)).expect("round trip"));
}

#[test]
fn comments_and_blank_lines_are_ignored_anywhere() {
    let text = "c preamble\n\np cnf 2 2\nc between clauses\n1 -2 0\n\n2 0\nc trailing\n";
    let f = parse(text).expect("parses");
    assert_eq!(f.num_vars, 2);
    assert_eq!(f.clauses.len(), 2);
}

#[test]
fn empty_formula_roundtrips() {
    let f = Cnf::new(0);
    let text = print(&f);
    assert_eq!(parse(&text).expect("parses"), f);
    assert!(matches!(solve(&f), SatResult::Sat(_)));
}
