//! Fixed-seed equivalence: distributed probe detection vs the global scan.
//!
//! The probe detector ([`kplock::sim::DeadlockDetection::Probe`]) sees only
//! site-local wait-edges and talks over the latency-modelled network; the
//! periodic scan reads a god's-eye wait-for graph. On the pinned regression
//! workloads both must resolve every deadlock — same committed outcome,
//! same aborted transactions where the cycle is deterministic — with the
//! probes paying the message/latency costs the scan never sees. The
//! `probe_audit` cross-check (measurement-only) confirms no victim was
//! killed off-cycle.

use kplock::core::policy::LockStrategy;
use kplock::sim::{run, DeadlockDetection, LatencyModel, SimConfig, SimReport, VictimPolicy};
use kplock::workload::{fig5, random_system, site_count_sweep, WorkloadParams};

fn with_detection(cfg: &SimConfig, detection: DeadlockDetection) -> SimConfig {
    SimConfig {
        resolution: detection.into(),
        probe_audit: true,
        ..cfg.clone()
    }
}

/// The transactions that were ever aborted (committed after at least one
/// restart).
fn aborted_set(r: &SimReport) -> Vec<usize> {
    r.committed_epoch
        .iter()
        .enumerate()
        .filter(|&(_, &e)| e.is_some_and(|ep| ep > 0))
        .map(|(i, _)| i)
        .collect()
}

/// Runs one system under Periodic and Probe and applies the shared
/// assertions: both complete, both commit everything serializably, probes
/// never kill off-cycle. Returns the pair of reports for workload-specific
/// checks.
fn check_equivalence(sys: &kplock::model::TxnSystem, cfg: &SimConfig) -> (SimReport, SimReport) {
    let scan = run(sys, &with_detection(cfg, DeadlockDetection::Periodic)).unwrap();
    let probe = run(sys, &with_detection(cfg, DeadlockDetection::Probe)).unwrap();
    assert!(scan.finished(), "periodic scan must finish");
    assert!(
        probe.finished(),
        "probe detection must resolve every deadlock the scan resolves ({:?})",
        probe.outcome
    );
    assert_eq!(scan.metrics.committed, probe.metrics.committed);
    assert!(scan.audit.serializable && probe.audit.serializable);
    assert_eq!(
        probe.metrics.phantom_probe_aborts, 0,
        "probe aborted a transaction that was on no cycle"
    );
    (scan, probe)
}

#[test]
fn pinned_random_workload_resolves_identically() {
    // The same system pinned by tests/sim_regression.rs.
    let sys = random_system(&WorkloadParams {
        seed: 21,
        sites: 3,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 20),
        seed: 7,
        ..Default::default()
    };
    check_equivalence(&sys, &cfg);
}

#[test]
fn pinned_deadlock_prone_workload_aborts_the_same_set() {
    // Deadlock-prone pinned workload: the scan resolves one cycle here
    // (see PIN_DEADLOCK); probes must resolve the equivalent deadlocks and
    // land on the same committed/aborted sets, possibly at different ticks.
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cfg = SimConfig {
        latency: LatencyModel::Fixed(5),
        victim_policy: VictimPolicy::Oldest,
        ..Default::default()
    };
    let (scan, probe) = check_equivalence(&sys, &cfg);
    assert_eq!(aborted_set(&scan), aborted_set(&probe));
}

#[test]
fn fig5_runs_clean_under_probes() {
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 9),
        seed: 3,
        ..Default::default()
    };
    let (scan, probe) = check_equivalence(&fig5(), &cfg);
    // fig5 is safe and deadlock-free under these timings: neither scheme
    // aborts anything. But its locks do block, and blocking launches
    // chases — the probe scheme pays network cost for waits that never
    // were deadlocks, a price the god's-eye scan never shows.
    assert_eq!(scan.metrics.aborts, 0);
    assert_eq!(probe.metrics.aborts, 0);
    assert_eq!(scan.metrics.deadlocks_resolved, 0);
    assert!(
        probe.metrics.probe_messages > 0,
        "cross-site waits trigger chases even without deadlock"
    );
}

#[test]
fn guaranteed_cross_site_cycle_same_victim_both_policies() {
    use kplock::model::{Database, TxnBuilder, TxnSystem};
    let db = Database::from_spec(&[("x", 0), ("y", 1)]);
    let mut b1 = TxnBuilder::new(&db, "T1");
    b1.script("Lx Ly x y Ux Uy").unwrap();
    let t1 = b1.build().unwrap();
    let mut b2 = TxnBuilder::new(&db, "T2");
    b2.script("Ly Lx y x Uy Ux").unwrap();
    let t2 = b2.build().unwrap();
    let sys = TxnSystem::new(db, vec![t1, t2]);
    for policy in [VictimPolicy::Youngest, VictimPolicy::Oldest] {
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            victim_policy: policy,
            ..Default::default()
        };
        let (scan, probe) = check_equivalence(&sys, &cfg);
        assert_eq!(
            aborted_set(&scan),
            aborted_set(&probe),
            "same cycle, same policy ({policy:?}) must kill the same victim"
        );
        assert!(probe.metrics.probe_messages > 0, "the cycle spans sites");
    }
}

#[test]
fn site_sweep_probes_pay_more_as_distribution_grows() {
    // Across a site-count sweep (same data, same offered work), probes
    // must stay equivalent to the scan; their message overhead is the
    // measured price of distribution.
    let base = WorkloadParams {
        seed: 31,
        transactions: 5,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    };
    let cfg = SimConfig {
        latency: LatencyModel::Fixed(5),
        ..Default::default()
    };
    for sc in site_count_sweep(&base, 6, &[1, 2, 3, 6]) {
        let (_, probe) = check_equivalence(&sc.system, &cfg);
        if sc.value == 1 {
            assert_eq!(
                probe.metrics.probe_messages, 0,
                "one site: every chase is local"
            );
        }
    }
}

#[test]
fn probe_runs_are_deterministic() {
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 20),
        seed: 9,
        resolution: DeadlockDetection::Probe.into(),
        ..Default::default()
    };
    let a = run(&sys, &cfg).unwrap();
    let b = run(&sys, &cfg).unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.committed_epoch, b.committed_epoch);
}
